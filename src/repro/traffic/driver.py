"""The open-loop driver: execute a compiled schedule against a server.

**Open loop** means send times come from the schedule, never from the
server: a slow response does not delay the requests behind it.  That is
the property that makes the latency numbers honest — closed-loop
generators silently stop offering load exactly when the server
struggles (coordinated omission), so their tail latencies measure the
generator's politeness, not the server.  Two rules enforce it here:

* every request is fired as its own task at its scheduled instant
  (``asyncio.sleep`` until the schedule says so, then fire-and-track);
* latency is ``completion − scheduled_send``, not ``completion −
  actual_send`` — if the driver or server ever falls behind, the
  queueing delay lands in the recorded latency instead of vanishing.

The only concession to reality is ``max_inflight``: past that many
outstanding requests, further sends are *counted as shed* (and
reported) rather than silently delayed — bounded memory without
giving up the open-loop accounting.

Wall-clock time appears exactly once, at the I/O edge (run timing);
everything schedule-shaped is deterministic and REP001-scoped.
"""

from __future__ import annotations

import asyncio
import time

from repro.serve.client import (AsyncServeClient, ServeClientError,
                                ServeDeadlineError)
from repro.traffic.report import TrafficReport, WindowSummary
from repro.traffic.schedule import Schedule


class OpenLoopDriver:
    """Replay one :class:`Schedule` through an :class:`AsyncServeClient`.

    ``stream`` (optional) names a server-side trace stream: after the
    replay, each window's latency digest state and outcome counters are
    posted to ``POST /v1/streams/<stream>/observe``, where the server
    merges them exactly — the path that lets several drivers (or
    several runs) aggregate into one server-held windowed view.
    """

    def __init__(self, schedule: Schedule, host: str = "127.0.0.1",
                 port: int = 8737, *, deadline_s: float = 10.0,
                 stream: str | None = None,
                 client: AsyncServeClient | None = None):
        self.schedule = schedule
        self.host = host
        self.port = port
        self.deadline_s = deadline_s
        self.stream = stream
        self._client = client
        self._inflight = 0
        spec = schedule.spec
        self.windows = [WindowSummary(window=w)
                        for w in range(spec.num_windows)]
        for row in schedule.window_plan():
            self.windows[row["window"]].scheduled = row["scheduled"]

    def run(self) -> TrafficReport:
        """Blocking entry point: replay and return the report."""
        start = time.monotonic()  # repro: noqa[REP001] — I/O edge timing
        report = asyncio.run(self.drive())
        report.wall_s = time.monotonic() - start  # repro: noqa[REP001]
        return report

    async def drive(self) -> TrafficReport:
        """Replay on the caller's event loop (composable form)."""
        spec = self.schedule.spec
        client = self._client or AsyncServeClient(
            self.host, self.port, deadline_s=self.deadline_s)
        loop = asyncio.get_running_loop()
        epoch = loop.time()
        tasks = []
        for request in self.schedule.requests:
            delay = epoch + request.t_s - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            window = self.windows[self.schedule.window_index(request.t_s)]
            if self._inflight >= spec.max_inflight:
                window.note("shed")
                continue
            self._inflight += 1
            tasks.append(loop.create_task(
                self._fire(client, request, window, epoch)))
        if tasks:
            await asyncio.gather(*tasks)
        if self.stream:
            await self._publish(client)
        return self._report()

    async def _fire(self, client: AsyncServeClient, request, window,
                    epoch: float) -> None:
        loop = asyncio.get_running_loop()
        window.note("sent")
        try:
            reply = await client.request(
                "POST", f"/v1/experiments/{request.experiment}",
                payload=request.params, deadline_s=self.deadline_s)
        except ServeDeadlineError:
            window.note("deadline_missed")
        except ServeClientError:
            window.note("failed")
        else:
            if reply.ok:
                window.note("ok")
                # schedule-relative: queueing delay stays visible
                window.digest.add(loop.time() - (epoch + request.t_s))
            elif reply.status == 429:
                window.note("rejected")
            else:
                window.note("failed")
        finally:
            self._inflight -= 1

    async def _publish(self, client: AsyncServeClient) -> None:
        """Post per-window digest states + counters to the trace stream."""
        for window in self.windows:
            if window.sent == 0 and window.shed == 0:
                continue
            counters = {"scheduled": window.scheduled,
                        "sent": window.sent, "ok": window.ok,
                        "rejected": window.rejected,
                        "deadline_missed": window.deadline_missed,
                        "failed": window.failed, "shed": window.shed}
            await client.stream_observe(
                self.stream, window.window,
                window_s=self.schedule.spec.window_s,
                digest=window.digest.to_state(), counters=counters)

    def _report(self) -> TrafficReport:
        spec = self.schedule.spec
        return TrafficReport(spec_name=spec.name,
                             schedule_digest=self.schedule.digest(),
                             duration_s=spec.duration_s,
                             window_s=spec.window_s,
                             offered_rps=self.schedule.offered_rps,
                             windows=self.windows)
