"""Multi-tenant side-channel scenarios: the defence, re-tested under load.

The paper evaluates random CTA scheduling (Sec V-C) on a quiet device:
one attacker, no contention.  A real measurement service is shared —
the attacker is *one tenant*, racing background traffic for admission
slots and compute.  This module reruns that evaluation honestly:

* background tenants replay an open-loop schedule through the service
  (:class:`~repro.traffic.driver.OpenLoopDriver`);
* the attacker, concurrently on the same event loop, submits
  ``sidechannel-probe`` batches with a per-request deadline — probes
  lost to 429s or deadlines cost it samples, exactly like dropped probe
  traffic on a production endpoint;
* surviving batches accumulate into the usual leakage fit
  (:func:`repro.sidechannel.rsa_leakage` /
  :func:`~repro.sidechannel.aes_leakage`), once per (offered load,
  scheduler) point.

The claim under test: the random-scheduler defence keeps attacker
leakage below the static scheduler's at every offered load — the
defence is not an artifact of a quiet machine.
"""

from __future__ import annotations

import asyncio

from repro.errors import ConfigurationError
from repro.serve.client import (AsyncServeClient, ServeClientError,
                                ServeDeadlineError)
from repro.sidechannel.probe import aes_leakage, rsa_leakage
from repro.traffic.driver import OpenLoopDriver
from repro.traffic.schedule import compile_schedule
from repro.traffic.spec import ArrivalSpec, TenantSpec, TrafficSpec

#: Scheduler policies a defence evaluation compares.
DEFENSE_SCHEDULERS = ("static", "random")

#: The leakage figure of merit per attack (lower = better defended).
_LEAKAGE_METRIC = {"rsa": "r2", "aes": "peak_r"}


def background_spec(name: str, rate_rps: float, duration_s: float, *,
                    seed: int = 11, window_s: float = 1.0,
                    max_inflight: int = 128) -> TrafficSpec:
    """A background-tenant mix offering ``rate_rps`` against the server.

    One hot-key-skewed tenant probing single latency-matrix cells: the
    hot keys coalesce and cache (cheap, realistic read traffic), the
    Zipf tail forces fresh computations that hold pool slots — both
    kinds of contention the attacker must fight through.
    """
    tenant = TenantSpec(
        name="bg-latency", experiment="latency-matrix", weight=1.0,
        params_base={"sms": [0], "samples": 1},
        hot_keys=16, zipf_s=1.1, key_param="seed")
    return TrafficSpec(
        name=name, seed=seed, duration_s=duration_s, window_s=window_s,
        max_inflight=max_inflight,
        arrival=ArrivalSpec(process="poisson", rate_rps=rate_rps),
        tenants=(tenant,))


async def _attacker(client: AsyncServeClient, *, gpu: str, seed: int,
                    attack: str, scheduler: str, batches: int,
                    deadline_s: float) -> list:
    """Submit probe batches sequentially; keep whatever survived."""
    points = []
    for batch in range(batches):
        try:
            reply = await client.experiment(
                "sidechannel-probe", deadline_s=deadline_s, gpu=gpu,
                seed=seed, attack=attack, scheduler=scheduler,
                batch=batch)
        except (ServeDeadlineError, ServeClientError):
            continue
        if reply.ok:
            points.append(reply.json["value"])
    return points


async def _defense_point(host: str, port: int, *, spec: TrafficSpec,
                         gpu: str, seed: int, attack: str,
                         scheduler: str, batches: int,
                         deadline_s: float) -> dict:
    """One (offered load, scheduler) evaluation: replay + attack."""
    schedule = compile_schedule(spec)
    driver = OpenLoopDriver(schedule, host, port, deadline_s=deadline_s)
    attacker_client = AsyncServeClient(host, port, deadline_s=deadline_s)
    background = asyncio.ensure_future(driver.drive())
    try:
        points = await _attacker(attacker_client, gpu=gpu, seed=seed,
                                 attack=attack, scheduler=scheduler,
                                 batches=batches, deadline_s=deadline_s)
    finally:
        report = await background
    leakage = (rsa_leakage(points) if attack == "rsa"
               else aes_leakage(points))
    return {"offered_rps": schedule.offered_rps,
            "achieved_rps": report.achieved_rps,
            "scheduler": scheduler,
            "batches_sent": batches,
            "batches_landed": len(points),
            "background": report.totals,
            "leakage": leakage}


async def _run_scenario(host: str, port: int, *, loads_rps, gpu, seed,
                        attack, batches, duration_s, deadline_s) -> list:
    points = []
    for load in loads_rps:
        for scheduler in DEFENSE_SCHEDULERS:
            spec = background_spec(f"defense-bg-{load}", load,
                                   duration_s, seed=seed)
            points.append(await _defense_point(
                host, port, spec=spec, gpu=gpu, seed=seed,
                attack=attack, scheduler=scheduler, batches=batches,
                deadline_s=deadline_s))
    return points


def run_defense_under_load(host: str = "127.0.0.1", port: int = 8737, *,
                           loads_rps=(4.0, 24.0), attack: str = "rsa",
                           gpu: str = "V100", seed: int = 7,
                           batches: int = 6, duration_s: float = 3.0,
                           deadline_s: float = 20.0) -> dict:
    """Evaluate the random-scheduler defence at each offered load.

    Returns the per-point measurements plus the verdict the scenario
    exists to check: ``defended_at[load]`` is true when the attacker's
    leakage under the random scheduler stays below its static-scheduler
    leakage at that load, and ``defended`` requires it at *every* load.
    """
    if attack not in _LEAKAGE_METRIC:
        raise ConfigurationError(
            f"unknown attack {attack!r}; use rsa or aes")
    if len(loads_rps) < 1:
        raise ConfigurationError("need at least one offered load")
    points = asyncio.run(_run_scenario(
        host, port, loads_rps=loads_rps, gpu=gpu, seed=seed,
        attack=attack, batches=batches, duration_s=duration_s,
        deadline_s=deadline_s))
    metric = _LEAKAGE_METRIC[attack]
    defended_at = {}
    ordered = iter(points)   # two points per load: static, then random
    for load in loads_rps:
        static_point = next(ordered)
        random_point = next(ordered)
        defended_at[str(load)] = (random_point["leakage"][metric]
                                  < static_point["leakage"][metric])
    return {"attack": attack, "gpu": gpu, "seed": seed,
            "metric": metric, "loads_rps": list(loads_rps),
            "points": points,
            "defended_at": defended_at,
            "defended": all(defended_at.values())}
