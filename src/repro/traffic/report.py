"""Replay reports: what the open-loop run measured, windowed.

Two layers, deliberately separated:

* :func:`deterministic_summary` — the *plan* projection: schedule
  digest, per-window scheduled counts by tenant.  A pure function of
  the compiled schedule, so it is identical whatever server (or worker
  count) later executes the replay — the property the determinism
  tests pin.
* :class:`TrafficReport` — the *measured* side: per-window outcome
  counters and coordinated-omission-safe latency digests (latency is
  completion minus the **scheduled** send time, so a stalled server
  inherits the queueing delay it caused instead of hiding it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serve.metrics import StreamingDigest

#: Outcome counters every window tracks (order = report order).
OUTCOMES = ("sent", "ok", "rejected", "deadline_missed", "failed", "shed")


@dataclass
class WindowSummary:
    """One schedule window's measured outcomes."""
    window: int
    scheduled: int = 0
    sent: int = 0
    ok: int = 0
    rejected: int = 0           # HTTP 429: admission control said no
    deadline_missed: int = 0    # client deadline expired in flight
    failed: int = 0             # transport errors / non-429 failures
    shed: int = 0               # never sent: client inflight cap
    digest: StreamingDigest = field(default_factory=StreamingDigest)

    def note(self, outcome: str) -> None:
        setattr(self, outcome, getattr(self, outcome) + 1)

    def to_jsonable(self) -> dict:
        return {"window": self.window, "scheduled": self.scheduled,
                **{name: getattr(self, name) for name in OUTCOMES},
                "latency": self.digest.summary_ms()}


@dataclass
class TrafficReport:
    """A full replay's measurements, windowed plus rolled up."""
    spec_name: str
    schedule_digest: str
    duration_s: float
    window_s: float
    offered_rps: float
    windows: list
    wall_s: float = 0.0

    @property
    def totals(self) -> dict:
        return {name: sum(getattr(w, name) for w in self.windows)
                for name in OUTCOMES}

    @property
    def achieved_rps(self) -> float:
        return self.totals["ok"] / self.duration_s

    def latency_digest(self) -> StreamingDigest:
        """All windows' latencies merged — exact, by digest contract."""
        rollup = StreamingDigest()
        for window in self.windows:
            rollup.merge(window.digest)
        return rollup

    def to_jsonable(self) -> dict:
        rollup = self.latency_digest()
        return {"spec": self.spec_name,
                "schedule_digest": self.schedule_digest,
                "duration_s": self.duration_s,
                "window_s": self.window_s,
                "wall_s": self.wall_s,
                "offered_rps": self.offered_rps,
                "achieved_rps": self.achieved_rps,
                "totals": self.totals,
                "latency": rollup.summary_ms(),
                "windows": [w.to_jsonable() for w in self.windows]}


def deterministic_summary(schedule) -> dict:
    """The replay's deterministic projection (see module docstring)."""
    plan = schedule.window_plan()
    return {"spec": schedule.spec.name,
            "seed": schedule.spec.seed,
            "schedule_digest": schedule.digest(),
            "requests": len(schedule.requests),
            "offered_rps": schedule.offered_rps,
            "windows": plan}
