"""Deterministic arrival-time generation for the open-loop generator.

Every process draws exclusively through :func:`repro.rng.generator_for`
keyed on ``(seed, *stream)``, so the same spec always compiles to the
same arrival vector — the foundation of byte-identical schedules.  All
functions return a sorted float array of arrival times in ``[0,
duration_s)`` seconds.

The non-Poisson processes reduce to Poisson pieces: MMPP alternates two
exponential-sojourn states each emitting Poisson arrivals at its own
rate; the diurnal process is a nonhomogeneous Poisson thinned from its
peak rate; the trace process stretches a workload's per-step intensity
profile over the run and draws each step as a Poisson segment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import generator_for
from repro.traffic.spec import ArrivalSpec
from repro.workloads.intensity import intensity_profile


def _exp_arrivals(rng: np.random.Generator, rate: float, start: float,
                  end: float) -> np.ndarray:
    """Homogeneous Poisson arrivals in ``[start, end)`` at ``rate``."""
    span = end - start
    if span <= 0 or rate <= 0:
        return np.empty(0)
    times = np.empty(0)
    t_last = start
    while True:
        expect = rate * (end - t_last)
        chunk = max(16, int(expect * 1.5) + 16)
        gaps = rng.exponential(1.0 / rate, size=chunk)
        new = t_last + np.cumsum(gaps)
        times = np.concatenate([times, new])
        if times[-1] >= end:
            return times[times < end]
        t_last = float(times[-1])


def _poisson(arrival: ArrivalSpec, duration_s: float,
             rng: np.random.Generator) -> np.ndarray:
    return _exp_arrivals(rng, arrival.rate_rps, 0.0, duration_s)


def _mmpp(arrival: ArrivalSpec, duration_s: float,
          rng: np.random.Generator) -> np.ndarray:
    """Two-state MMPP with mean rate ``rate_rps``.

    Sojourns in each state are exponential at ``switch_hz``; with equal
    expected time per state the quiet/burst rates solve to ``2r/(1+b)``
    and ``b`` times that, so the long-run mean stays the configured
    rate whatever the burst ratio.
    """
    quiet = 2.0 * arrival.rate_rps / (1.0 + arrival.burst_ratio)
    rates = (quiet, quiet * arrival.burst_ratio)
    state = int(rng.integers(0, 2))
    t = 0.0
    pieces = []
    while t < duration_s:
        sojourn = float(rng.exponential(1.0 / arrival.switch_hz))
        end = min(t + sojourn, duration_s)
        pieces.append(_exp_arrivals(rng, rates[state], t, end))
        t = end
        state = 1 - state
    return np.concatenate(pieces) if pieces else np.empty(0)


def _diurnal(arrival: ArrivalSpec, duration_s: float,
             rng: np.random.Generator) -> np.ndarray:
    """Nonhomogeneous Poisson, intensity ``r(1 + depth sin(2πt/T))``.

    Standard thinning: candidates arrive at the peak rate, each kept
    with probability ``λ(t)/λ_max`` — exact, and the candidate + accept
    draws both come from the keyed stream, so the result is still a
    pure function of (seed, spec).
    """
    peak = arrival.rate_rps * (1.0 + arrival.depth)
    candidates = _exp_arrivals(rng, peak, 0.0, duration_s)
    if candidates.size == 0:
        return candidates
    intensity = arrival.rate_rps * (
        1.0 + arrival.depth * np.sin(
            2.0 * np.pi * candidates / arrival.period_s))
    keep = rng.random(candidates.size) < intensity / peak
    return candidates[keep]


def _trace(arrival: ArrivalSpec, duration_s: float,
           rng: np.random.Generator) -> np.ndarray:
    """Workload-shaped arrivals: per-step Poisson at profiled intensity.

    The trace's normalized per-step intensity (mean 1.0) is stretched
    over the run — ``n`` steps each spanning ``duration/n`` — and each
    step emits Poisson arrivals at ``rate * intensity[step]``, so the
    replay inherits the workload's bursts and lulls while keeping the
    configured mean rate.
    """
    profile = intensity_profile(arrival.profile, arrival.profile_seed)
    step_s = duration_s / profile.size
    pieces = []
    for i, intensity in enumerate(profile):
        rate = arrival.rate_rps * float(intensity)
        pieces.append(_exp_arrivals(rng, rate, i * step_s,
                                    (i + 1) * step_s))
    return np.concatenate(pieces) if pieces else np.empty(0)


_PROCESSES = {"poisson": _poisson, "mmpp": _mmpp, "diurnal": _diurnal,
              "trace": _trace}


def arrival_times(arrival: ArrivalSpec, duration_s: float, seed: int,
                  *stream) -> np.ndarray:
    """Sorted arrival times (seconds) for one spec, one keyed stream."""
    if duration_s <= 0:
        raise ConfigurationError("duration_s must be positive")
    fn = _PROCESSES.get(arrival.process)
    if fn is None:
        raise ConfigurationError(
            f"unknown arrival process {arrival.process!r}")
    rng = generator_for(seed, "traffic", "arrivals", arrival.process,
                        *stream)
    times = fn(arrival, duration_s, rng)
    return np.sort(times)
