"""Schedule compilation: a traffic spec becomes a replayable artifact.

:func:`compile_schedule` turns a :class:`TrafficSpec` into the full
ordered request list — every send time, tenant, experiment, and sampled
key decided *ahead of the run*, drawn only from keyed
:mod:`repro.rng` streams.  The compiled :class:`Schedule` serializes to
canonical JSON (sorted keys, tight separators), so its bytes — and the
sha256 digest over them — are identical across machines, runs, and
server configurations; the driver merely executes it.

Determinism contract (asserted by the tests): same ``(spec)`` ⇒
byte-identical :meth:`Schedule.canonical_bytes`, identical
:meth:`Schedule.digest`, identical :meth:`Schedule.window_plan` —
independent of how many workers the *server* runs, because none of this
touches a server.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.rng import generator_for
from repro.units import MEGA
from repro.traffic.arrivals import arrival_times
from repro.traffic.sampling import zipf_sample
from repro.traffic.spec import TrafficSpec


def _canonical(value) -> bytes:
    """Deterministic JSON bytes (the serve tier's canonical form)."""
    return json.dumps(value, sort_keys=True,
                      separators=(",", ":")).encode()


@dataclass(frozen=True)
class ScheduledRequest:
    """One planned send: who fires what, and exactly when."""
    seq: int
    t_s: float
    tenant: str
    experiment: str
    params: dict

    def to_jsonable(self) -> list:
        # positional row, not a dict: schedules run to thousands of
        # requests and the canonical bytes are hashed and cached
        return [self.seq, self.t_s, self.tenant, self.experiment,
                self.params]

    @classmethod
    def from_jsonable(cls, row: list) -> "ScheduledRequest":
        seq, t_s, tenant, experiment, params = row
        return cls(int(seq), float(t_s), str(tenant), str(experiment),
                   dict(params))


@dataclass(frozen=True)
class Schedule:
    """A compiled, replayable request schedule."""
    spec: TrafficSpec
    requests: tuple

    @property
    def offered_rps(self) -> float:
        return len(self.requests) / self.spec.duration_s

    def to_jsonable(self) -> dict:
        return {"spec": self.spec.to_dict(),
                "requests": [r.to_jsonable() for r in self.requests]}

    @classmethod
    def from_jsonable(cls, raw: dict) -> "Schedule":
        return cls(TrafficSpec.from_dict(raw["spec"]),
                   tuple(ScheduledRequest.from_jsonable(r)
                         for r in raw["requests"]))

    def canonical_bytes(self) -> bytes:
        return _canonical(self.to_jsonable())

    def digest(self) -> str:
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    def window_index(self, t_s: float) -> int:
        return int(t_s / self.spec.window_s)

    def window_plan(self) -> list:
        """Per-window scheduled counts, by tenant — the deterministic
        projection of a run's window report.

        Every window of the spec appears (empty ones included), so two
        replays of the same schedule produce structurally identical
        plans regardless of which requests the server later admitted.
        """
        per_window: dict[int, dict[str, int]] = {
            w: {} for w in range(self.spec.num_windows)}
        for request in self.requests:
            counts = per_window[self.window_index(request.t_s)]
            counts[request.tenant] = counts.get(request.tenant, 0) + 1
        return [{"window": w, "scheduled": sum(counts.values()),
                 "tenants": dict(sorted(counts.items()))}
                for w, counts in sorted(per_window.items())]


def compile_schedule(spec: TrafficSpec, cache=None) -> Schedule:
    """Compile ``spec`` into its :class:`Schedule`.

    All randomness comes from streams keyed on ``(spec.seed,
    spec.name, purpose)``: one arrival stream, one tenant-assignment
    stream, one key stream per tenant.  Arrival times are rounded to
    whole microseconds before entering the schedule so the canonical
    JSON never depends on float-repr edge cases.

    ``cache`` (a :class:`repro.exec.ResultCache`) memoizes the compiled
    schedule under a content hash of the spec — compilation is cheap,
    but the cached entry doubles as the on-disk artifact the CLI's
    ``compile`` subcommand emits.
    """
    key = None
    if cache is not None:
        from repro.exec.cache import cache_key
        key = cache_key("traffic:schedule", spec.to_dict())
        hit = cache.get(key)
        if hit is not None:
            return Schedule.from_jsonable(hit)

    times = arrival_times(spec.arrival, spec.duration_s, spec.seed,
                          spec.name)
    times = np.round(times * MEGA) / MEGA   # whole microseconds
    n = times.size

    weights = np.array([t.weight for t in spec.tenants], dtype=float)
    cumulative = np.cumsum(weights / weights.sum())
    assign_rng = generator_for(spec.seed, "traffic", "tenants", spec.name)
    tenant_of = np.minimum(
        np.searchsorted(cumulative, assign_rng.random(n), side="right"),
        len(spec.tenants) - 1)

    # one key stream per tenant, consumed in schedule order
    keys = {}
    for index, tenant in enumerate(spec.tenants):
        count = int(np.sum(tenant_of == index))
        rng = generator_for(spec.seed, "traffic", "keys", spec.name,
                            tenant.name)
        keys[index] = zipf_sample(tenant.hot_keys, tenant.zipf_s,
                                  rng.random(count))

    requests = []
    cursor = [0] * len(spec.tenants)
    for seq in range(n):
        index = int(tenant_of[seq])
        tenant = spec.tenants[index]
        hot_key = int(keys[index][cursor[index]])
        cursor[index] += 1
        params = dict(tenant.params_base)
        params[tenant.key_param] = hot_key
        requests.append(ScheduledRequest(seq, float(times[seq]),
                                         tenant.name, tenant.experiment,
                                         params))
    schedule = Schedule(spec, tuple(requests))

    if cache is not None and key is not None:
        cache.put(key, schedule.to_jsonable())
    return schedule
