"""Declarative traffic specs: what a replay run *is*, as plain data.

A :class:`TrafficSpec` fully determines an open-loop schedule: the
arrival process shaping *when* requests fire, the tenant mix shaping
*who* fires them, and the hot-key skew shaping *which* computation each
request names.  Everything downstream — the compiled schedule, its
digest, the window plan — is a pure function of ``(spec, seed)``, which
is what lets two machines (or two ``--workers`` settings) replay the
same traffic byte for byte.

Specs round-trip through plain dicts (``to_dict``/``from_dict``) so the
CLI can read them from JSON files and the schedule cache can address
them canonically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Arrival processes :mod:`repro.traffic.arrivals` implements.
ARRIVAL_PROCESSES = ("poisson", "mmpp", "diurnal", "trace")


@dataclass(frozen=True)
class ArrivalSpec:
    """When requests arrive: one process plus its shape knobs.

    ``rate_rps`` is always the *mean* offered rate; the process decides
    how it is distributed in time — memoryless (``poisson``), bursty
    two-state Markov-modulated (``mmpp``, bursts ``burst_ratio`` times
    hotter than the quiet state, switching at ``switch_hz``), smooth
    sinusoidal load-following (``diurnal``, ``depth`` modulation over
    ``period_s``), or shaped by a workload trace's per-step volume
    (``trace``, naming a :data:`repro.workloads.TRACE_PROFILES` entry).
    """

    process: str = "poisson"
    rate_rps: float = 20.0
    burst_ratio: float = 4.0
    switch_hz: float = 1.0
    period_s: float = 10.0
    depth: float = 0.8
    profile: str = "bfs"
    profile_seed: int = 0

    def __post_init__(self):
        if self.process not in ARRIVAL_PROCESSES:
            raise ConfigurationError(
                f"unknown arrival process {self.process!r}; "
                f"known: {', '.join(ARRIVAL_PROCESSES)}")
        if self.rate_rps <= 0:
            raise ConfigurationError("arrival rate_rps must be positive")
        if self.burst_ratio < 1.0:
            raise ConfigurationError("burst_ratio must be >= 1")
        if self.switch_hz <= 0:
            raise ConfigurationError("switch_hz must be positive")
        if self.period_s <= 0:
            raise ConfigurationError("period_s must be positive")
        if not 0.0 <= self.depth < 1.0:
            raise ConfigurationError("depth must be in [0, 1)")

    def to_dict(self) -> dict:
        return {"process": self.process, "rate_rps": self.rate_rps,
                "burst_ratio": self.burst_ratio,
                "switch_hz": self.switch_hz, "period_s": self.period_s,
                "depth": self.depth, "profile": self.profile,
                "profile_seed": self.profile_seed}

    @classmethod
    def from_dict(cls, raw: dict) -> "ArrivalSpec":
        return cls(**_checked_fields(cls, raw, "arrival"))


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the shared service.

    ``weight`` is the tenant's share of arrivals; each of its requests
    runs ``experiment`` with ``params_base`` plus one sampled key: a
    Zipf(``zipf_s``) draw over ``hot_keys`` values substituted into
    ``key_param``.  The skew is what makes replay traffic look like
    production — a few hot computations that coalesce and cache, plus a
    long cold tail that pays full compute.
    """

    name: str
    experiment: str
    weight: float = 1.0
    params_base: dict = field(default_factory=dict)
    hot_keys: int = 64
    zipf_s: float = 1.1
    key_param: str = "seed"

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("tenant needs a name")
        if not self.experiment:
            raise ConfigurationError(
                f"tenant {self.name!r} needs an experiment")
        if self.weight <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r}: weight must be positive")
        if self.hot_keys < 1:
            raise ConfigurationError(
                f"tenant {self.name!r}: hot_keys must be >= 1")
        if self.zipf_s < 0:
            raise ConfigurationError(
                f"tenant {self.name!r}: zipf_s must be >= 0")
        if self.key_param in self.params_base:
            raise ConfigurationError(
                f"tenant {self.name!r}: key_param {self.key_param!r} "
                "collides with params_base")

    def to_dict(self) -> dict:
        return {"name": self.name, "experiment": self.experiment,
                "weight": self.weight,
                "params_base": dict(self.params_base),
                "hot_keys": self.hot_keys, "zipf_s": self.zipf_s,
                "key_param": self.key_param}

    @classmethod
    def from_dict(cls, raw: dict) -> "TenantSpec":
        return cls(**_checked_fields(cls, raw, "tenant"))


@dataclass(frozen=True)
class TrafficSpec:
    """A complete replay: arrivals + tenant mix + run geometry."""

    name: str
    arrival: ArrivalSpec
    tenants: tuple
    seed: int = 0
    duration_s: float = 10.0
    window_s: float = 1.0
    max_inflight: int = 256

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("traffic spec needs a name")
        if not self.tenants:
            raise ConfigurationError(
                f"spec {self.name!r} needs at least one tenant")
        object.__setattr__(self, "tenants", tuple(self.tenants))
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"spec {self.name!r} has duplicate tenant names")
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if not 0 < self.window_s <= self.duration_s:
            raise ConfigurationError(
                "window_s must be in (0, duration_s]")
        if self.max_inflight < 1:
            raise ConfigurationError("max_inflight must be >= 1")

    @property
    def num_windows(self) -> int:
        return int(self.duration_s / self.window_s - 1e-9) + 1

    def to_dict(self) -> dict:
        return {"name": self.name, "seed": self.seed,
                "duration_s": self.duration_s, "window_s": self.window_s,
                "max_inflight": self.max_inflight,
                "arrival": self.arrival.to_dict(),
                "tenants": [t.to_dict() for t in self.tenants]}

    @classmethod
    def from_dict(cls, raw: dict) -> "TrafficSpec":
        fields_ = _checked_fields(cls, raw, "traffic spec")
        arrival = fields_.get("arrival")
        if isinstance(arrival, dict):
            fields_["arrival"] = ArrivalSpec.from_dict(arrival)
        tenants = fields_.get("tenants", ())
        fields_["tenants"] = tuple(
            TenantSpec.from_dict(t) if isinstance(t, dict) else t
            for t in tenants)
        return cls(**fields_)


def _checked_fields(cls, raw: dict, what: str) -> dict:
    """Reject unknown keys before dataclass construction (typo guard)."""
    if not isinstance(raw, dict):
        raise ConfigurationError(f"{what} must be a JSON object")
    declared = set(cls.__dataclass_fields__)
    unknown = sorted(set(raw) - declared)
    if unknown:
        raise ConfigurationError(
            f"{what}: unknown field(s) {', '.join(unknown)}; "
            f"declared: {', '.join(sorted(declared))}")
    return dict(raw)
