"""Servable side-channel probe batches (the attacker-as-a-tenant path).

The paper evaluates its attacks (Fig 18/19) and the random-scheduler
defence (Sec V-C) in isolation: one attacker, one quiet GPU.  The
multi-tenant scenario layer (:mod:`repro.traffic.scenarios`) instead
runs the attacker as one tenant of the shared measurement service,
contending with background traffic for admission slots and compute.
That requires the attacker's unit of work to be a *servable experiment*:
a pure, picklable function of its parameters.

A **probe batch** is that unit: one oracle session on a fresh simulated
device under a chosen CTA scheduler, returning the raw timing points.
The ``batch`` index makes consecutive probes distinct computations (no
coalescing or cache reuse between them — each costs the attacker a real
admission slot, like real probe traffic) and decorrelates the random
scheduler's placements batch to batch.

The client-side attacker accumulates points across whichever batches
survived the load (429s and missed deadlines lose their points) and
fits the usual leakage models: :func:`rsa_ones_attack`'s ``r^2`` over
(ones, cycles), or :func:`aes_key_byte_attack`'s peak correlation.

The RSA ladder defaults to *adjacent* 1-bit counts around ``bits/2``.
Against a static scheduler the per-launch placement is constant, so
even adjacent counts separate cleanly (r^2 ~ 1); under the random
scheduler the placement intercept varies launch to launch and swamps
the one-multiply-per-bit slope, collapsing the fit — the dense ladder
is what makes the defence's effect visible at probe-batch sample sizes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AttackError
from repro.gpu.device import SimulatedGPU
from repro.runtime.scheduler import RandomScheduler, StaticScheduler
from repro.sidechannel.aes import AESTimingOracle
from repro.sidechannel.attacks import aes_key_byte_attack, rsa_ones_attack
from repro.sidechannel.rsa import RSATimingOracle, random_exponent

#: Modulus for probe decryptions: largest 64-bit prime-ish constant the
#: oracle accepts; the exact value only scales the trace length.
_PROBE_MODULUS = (1 << 63) - 25

#: Fixed probe key: the attack recovers last-round key bytes, so the
#: "secret" must be shared between the servable oracle and the
#: client-side attacker checking recovery.
_PROBE_KEY = bytes(range(16))


def probe_scheduler(gpu: SimulatedGPU, scheduler: str, seed: int,
                    batch: int):
    """The CTA scheduler a probe batch runs under.

    ``static`` reproduces the hardware policy (same placement every
    launch); ``random`` is the paper's defence, seeded per ``(seed,
    batch)`` so distinct batches see distinct placement streams —
    exactly what a deployed random scheduler would give an attacker.
    """
    if scheduler == "static":
        return StaticScheduler(gpu.num_sms, start=5 % gpu.num_sms)
    if scheduler == "random":
        return RandomScheduler(gpu.num_sms, seed=seed * 65537 + batch)
    raise AttackError(f"unknown scheduler {scheduler!r}; "
                      "use static or random")


def rsa_probe_batch(gpu_name: str, seed: int, scheduler: str, batch: int,
                    samples_per_point: int = 2, bits: int = 64,
                    ladder_width: int = 8) -> dict:
    """One RSA timing-probe batch: ``{"ones": [...], "cycles": [...]}``.

    ``ladder_width`` adjacent 1-bit counts centred on ``bits/2``, each
    decrypted ``samples_per_point`` times with batch-distinct exponents.
    """
    if samples_per_point <= 0 or ladder_width <= 0:
        raise AttackError("samples_per_point and ladder_width must be "
                          "positive")
    if not 4 <= ladder_width <= bits // 2:
        raise AttackError(f"ladder_width must be in [4, {bits // 2}]")
    gpu = SimulatedGPU(gpu_name, seed=seed)
    sched = probe_scheduler(gpu, scheduler, seed, batch)
    oracle = RSATimingOracle(gpu, _PROBE_MODULUS)
    start = bits // 2 - ladder_width // 2
    ones_values = range(start, start + ladder_width)
    ones, cycles = [], []
    index = 0
    for ones_count in ones_values:
        for s in range(samples_per_point):
            exponent = random_exponent(
                bits, ones_count, seed=batch * samples_per_point + s)
            _, elapsed, _ = oracle.decrypt_timed(exponent, sched,
                                                 launch_index=index)
            ones.append(int(ones_count))
            cycles.append(float(elapsed))
            index += 1
    return {"attack": "rsa", "scheduler": scheduler, "batch": batch,
            "gpu": gpu.name, "seed": seed, "ones": ones, "cycles": cycles}


def aes_probe_batch(gpu_name: str, seed: int, scheduler: str, batch: int,
                    samples: int = 24) -> dict:
    """One AES timing-probe batch: warp ciphertexts + total cycles.

    Plaintexts are drawn from a batch-keyed stream (fresh randomness
    per probe, like a chosen-plaintext attacker), so batches accumulate
    into one growing correlation-attack sample set client-side.
    """
    if samples < 8:
        raise AttackError("need at least 8 samples per AES batch")
    gpu = SimulatedGPU(gpu_name, seed=seed)
    sched = probe_scheduler(gpu, scheduler, seed, batch)
    oracle = AESTimingOracle(gpu, _PROBE_KEY, seed=seed * 9176 + batch)
    ciphertexts, times = oracle.collect(sched, samples)
    return {"attack": "aes", "scheduler": scheduler, "batch": batch,
            "gpu": gpu.name, "seed": seed,
            "ciphertexts": np.asarray(ciphertexts,
                                      dtype=np.uint8).tolist(),
            "cycles": [float(t) for t in times]}


def rsa_leakage(points: list) -> dict:
    """Leakage of accumulated RSA probe batches: the Fig 19 fit.

    ``points`` is a list of probe-batch dicts (each with ``ones`` /
    ``cycles``).  Returns ``r2`` — how much of the timing variance the
    1-bit count explains, the attacker's signal-to-noise — plus the
    sample count it was fit on.  Fewer than 3 points is no fit at all:
    leakage 0 by definition.
    """
    ones = [o for p in points for o in p["ones"]]
    cycles = [c for p in points for c in p["cycles"]]
    if len(ones) < 3:
        return {"attack": "rsa", "samples": len(ones), "r2": 0.0}
    fit = rsa_ones_attack(np.array(ones, dtype=float),
                          np.array(cycles, dtype=float))
    return {"attack": "rsa", "samples": len(ones),
            "r2": max(0.0, float(fit.r_squared))}


def aes_leakage(points: list, position: int = 0) -> dict:
    """Leakage of accumulated AES probe batches at one key-byte position.

    Rebuilds the oracle (the attacker knows its own probe device) and
    runs the last-round correlation attack over every sample that
    survived; leakage is the peak correlation, plus whether the true
    byte won.
    """
    batches = [p for p in points if p.get("ciphertexts")]
    if not batches:
        return {"attack": "aes", "samples": 0, "recovered": False,
                "peak_r": 0.0}
    gpu_seed = batches[0].get("seed", 0)
    ciphertexts = np.concatenate(
        [np.asarray(p["ciphertexts"], dtype=np.uint8) for p in batches])
    times = np.concatenate(
        [np.asarray(p["cycles"], dtype=float) for p in batches])
    gpu = SimulatedGPU(batches[0].get("gpu", "V100"), seed=gpu_seed)
    oracle = AESTimingOracle(gpu, _PROBE_KEY, seed=0)
    if ciphertexts.shape[0] < 8:
        return {"attack": "aes", "samples": int(ciphertexts.shape[0]),
                "recovered": False, "peak_r": 0.0}
    result = aes_key_byte_attack(oracle, ciphertexts, times, position)
    return {"attack": "aes", "samples": int(ciphertexts.shape[0]),
            "recovered": bool(result.recovered),
            "peak_r": max(0.0, result.peak_correlation)}
