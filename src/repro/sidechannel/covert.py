"""NoC-contention covert channel (paper Sec V-A, extension).

The paper notes that SM placement knowledge "can establish a covert
channel at the GPU NoC input" and L2-slice placement "at the output of
the GPU NoC".  This module implements that channel on the simulated
device: a *sender* modulates load on one L2 slice (streaming = bit 1,
idle = bit 0) while a *receiver* on other SMs continuously streams to
the same slice and decodes bits from its own achieved bandwidth — the
slice's ingress bandwidth is the shared resource.

Placement matters exactly as the paper predicts: the channel needs
enough sender SMs to push the slice into contention, which the
co-location fingerprinting of :mod:`repro.sidechannel.colocation`
provides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import rng
from repro.errors import AttackError
from repro.gpu.device import SimulatedGPU

#: relative bandwidth-measurement noise of the receiver (timer jitter)
_MEASURE_SIGMA = 0.01


@dataclass(frozen=True)
class CovertTransmission:
    """Outcome of sending one bit string through the channel."""
    sent: tuple
    received: tuple
    quiet_gbps: float      # receiver bandwidth while sender idle
    busy_gbps: float       # receiver bandwidth while sender streams
    threshold_gbps: float

    @property
    def accuracy(self) -> float:
        matches = sum(a == b for a, b in zip(self.sent, self.received))
        return matches / len(self.sent)

    @property
    def contrast(self) -> float:
        """Relative bandwidth swing the sender induces at the receiver."""
        return (self.quiet_gbps - self.busy_gbps) / self.quiet_gbps


class CovertChannel:
    """One-slice contention channel between two SM groups."""

    def __init__(self, gpu: SimulatedGPU, slice_id: int, sender_sms,
                 receiver_sms, seed: int = 0):
        self.gpu = gpu
        self.slice_id = slice_id
        self.sender_sms = list(sender_sms)
        self.receiver_sms = list(receiver_sms)
        self.seed = seed
        if not self.sender_sms or not self.receiver_sms:
            raise AttackError("need sender and receiver SMs")
        if set(self.sender_sms) & set(self.receiver_sms):
            raise AttackError("sender and receiver SMs must be disjoint")
        if not 0 <= slice_id < gpu.num_slices:
            raise AttackError(f"slice {slice_id} out of range")

    def _receiver_bandwidth(self, sender_active: bool, symbol: int) -> float:
        traffic = {sm: [self.slice_id] for sm in self.receiver_sms}
        if sender_active:
            traffic.update({sm: [self.slice_id] for sm in self.sender_sms})
        report = self.gpu.topology.solve(traffic)
        bw = sum(report.sm_gbps(sm) for sm in self.receiver_sms)
        noise = rng.jitter(self.seed, "covert-measure", symbol,
                           sender_active, sigma=_MEASURE_SIGMA * bw)[0]
        return float(bw + noise)

    def calibrate(self) -> tuple:
        """(quiet, busy, threshold) receiver bandwidth levels."""
        quiet = self._receiver_bandwidth(False, symbol=-1)
        busy = self._receiver_bandwidth(True, symbol=-2)
        if quiet - busy < 0.05 * quiet:
            raise AttackError(
                "no contention contrast: sender cannot modulate the slice "
                "(co-locate more sender SMs or pick a shared slice)")
        return quiet, busy, (quiet + busy) / 2.0

    def transmit(self, bits) -> CovertTransmission:
        """Send a bit string; returns the decoded result."""
        bits = tuple(int(b) for b in bits)
        if not bits:
            raise AttackError("nothing to transmit")
        if any(b not in (0, 1) for b in bits):
            raise AttackError("bits must be 0/1")
        quiet, busy, threshold = self.calibrate()
        received = []
        for i, bit in enumerate(bits):
            bw = self._receiver_bandwidth(bool(bit), symbol=i)
            received.append(1 if bw < threshold else 0)
        return CovertTransmission(sent=bits, received=tuple(received),
                                  quiet_gbps=quiet, busy_gbps=busy,
                                  threshold_gbps=threshold)


def best_effort_channel(gpu: SimulatedGPU, slice_id: int = 0,
                        sender_count: int = 4, receiver_count: int = 2,
                        seed: int = 0) -> CovertChannel:
    """Build a channel with sender SMs co-located near the target slice.

    Uses ground-truth placement for convenience; an attacker would use
    :mod:`repro.sidechannel.colocation` to find these SMs.
    """
    partition = gpu.hier.slice_info(slice_id).partition
    pool = gpu.hier.sms_in_partition(partition)
    if len(pool) < sender_count + receiver_count:
        raise AttackError("not enough SMs in the slice's partition")
    return CovertChannel(gpu, slice_id, pool[:sender_count],
                         pool[sender_count:sender_count + receiver_count],
                         seed=seed)
