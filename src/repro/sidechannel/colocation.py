"""Co-location via NoC latency fingerprints (paper Sec V-A, Implication 1).

With per-slice performance counters locked down, an attacker can still
recover *where* a kernel runs: measure the kernel's SM->slice latency
profile and match it against a fingerprint library by Pearson
correlation.  Same-GPC SMs correlate ~0.99 (Observation 4), so the match
localises the kernel at least to its GPC — enough to co-locate a spy
kernel for contention-based channels.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import pearson
from repro.core.latency_bench import measure_l2_latency
from repro.errors import AttackError
from repro.gpu.device import SimulatedGPU


def fingerprint_sm(gpu: SimulatedGPU, sm: int, samples: int = 2
                   ) -> np.ndarray:
    """Latency profile of one SM over all slices (the fingerprint)."""
    return measure_l2_latency(gpu, sm, samples=samples)


def build_fingerprint_library(gpu: SimulatedGPU, sms=None,
                              samples: int = 2) -> dict:
    """Fingerprints for a set of SMs (default: one per TPC)."""
    if sms is None:
        sms = [gpu.hier.sm_id(g, t, 0)
               for g in range(gpu.spec.num_gpcs)
               for t in range(gpu.spec.tpcs_per_gpc)]
    return {sm: fingerprint_sm(gpu, sm, samples) for sm in sms}


def identify_sm(library: dict, profile: np.ndarray) -> tuple:
    """Best-matching SM for a measured profile: (sm, correlation)."""
    if not library:
        raise AttackError("empty fingerprint library")
    best_sm, best_r = None, -2.0
    for sm, reference in library.items():
        r = pearson(reference, profile)
        if r > best_r:
            best_sm, best_r = sm, r
    return best_sm, best_r


def colocation_success_rate(gpu: SimulatedGPU, probe_sms,
                            library: dict | None = None) -> float:
    """Fraction of probes localised to the correct GPC."""
    probe_sms = list(probe_sms)
    if not probe_sms:
        raise AttackError("need at least one probe SM")
    if library is None:
        library = build_fingerprint_library(gpu)
    hits = 0
    for sm in probe_sms:
        profile = fingerprint_sm(gpu, sm, samples=2)
        matched, _ = identify_sm(library, profile)
        hits += gpu.hier.sm_info(matched).gpc == gpu.hier.sm_info(sm).gpc
    return hits / len(probe_sms)
