"""Random thread-block scheduling as a side-channel defence (Sec V-C).

The paper proposes random-*seed* CTA scheduling: zero hardware cost, but
every launch lands on different SMs, so the NoC's non-uniform latency
turns the attacker's timing model into noise.  ``evaluate_defense`` runs
the AES and RSA attacks under both schedulers and reports the before/after
(Fig 18 and Fig 19 in one structure).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AttackError
from repro.gpu.device import SimulatedGPU
from repro.runtime.scheduler import RandomScheduler, StaticScheduler
from repro.sidechannel.aes import AESTimingOracle
from repro.sidechannel.attacks import (aes_key_byte_attack, rsa_ones_attack)
from repro.sidechannel.rsa import RSATimingOracle


@dataclass(frozen=True)
class DefenseReport:
    """Attack effectiveness under static vs random scheduling."""
    aes_static_recovered: int       # key bytes recovered (of positions run)
    aes_random_recovered: int
    aes_positions: int
    aes_static_peak_r: float
    aes_random_peak_r: float
    rsa_static_r2: float
    rsa_random_r2: float

    @property
    def aes_defended(self) -> bool:
        return self.aes_random_recovered < self.aes_static_recovered

    @property
    def rsa_defended(self) -> bool:
        return self.rsa_random_r2 < self.rsa_static_r2


def evaluate_defense(gpu: SimulatedGPU, key: bytes = None,
                     num_samples: int = 300, positions=(0, 1, 2, 3),
                     rsa_bits: int = 128, seed: int = 3) -> DefenseReport:
    """Run both attacks under static and random scheduling."""
    if key is None:
        key = bytes(range(16))
    if len(key) != 16:
        raise AttackError("AES-128 key must be 16 bytes")

    static = StaticScheduler(gpu.num_sms, start=5)
    random_sched = RandomScheduler(gpu.num_sms, seed=seed)

    aes_stats = {}
    for name, scheduler in (("static", static), ("random", random_sched)):
        oracle = AESTimingOracle(gpu, key, seed=seed)
        ciphertexts, times = oracle.collect(scheduler, num_samples)
        recovered = 0
        peak = 0.0
        for pos in positions:
            result = aes_key_byte_attack(oracle, ciphertexts, times, pos)
            recovered += result.recovered
            peak = max(peak, result.peak_correlation)
        aes_stats[name] = (recovered, peak)

    rsa_stats = {}
    modulus = (1 << 127) - 1
    for name, scheduler in (("static", static), ("random", random_sched)):
        oracle = RSATimingOracle(gpu, modulus)
        ones, times = oracle.timing_curve(scheduler, bits=rsa_bits,
                                          samples_per_point=3)
        rsa_stats[name] = rsa_ones_attack(ones, times).r_squared

    return DefenseReport(
        aes_static_recovered=aes_stats["static"][0],
        aes_random_recovered=aes_stats["random"][0],
        aes_positions=len(tuple(positions)),
        aes_static_peak_r=aes_stats["static"][1],
        aes_random_peak_r=aes_stats["random"][1],
        rsa_static_r2=rsa_stats["static"],
        rsa_random_r2=rsa_stats["random"],
    )
