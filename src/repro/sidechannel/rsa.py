"""RSA square-and-multiply with a GPU timing oracle (paper Sec V-B2/Fig 19).

The decryption loop runs a real left-to-right square-and-multiply modular
exponentiation (verified against ``pow``); the GPU oracle charges device
time per operation — each ``square()``/``multiply()``/``reduction()`` is a
fixed block of ALU work plus operand loads through the NoC, and the grid
runs cooperatively on two SMs (the paper's square-kernel setup), so
execution time is linear in the number of 1-bits *and* shifted by the SM
placement (sync overhead up to 1.7x across partitions, Fig 17b).
"""

from __future__ import annotations

import numpy as np

from repro import rng
from repro.errors import AttackError
from repro.gpu.device import SimulatedGPU
from repro.runtime.kernel import KernelSpec
from repro.runtime.launcher import launch

#: ALU instructions per big-number primitive (square/multiply/reduce);
#: GPU big-number kernels are memory-bound, so the operand loads dominate
_ALU_PER_OP = 150
#: operand words fetched per primitive (spread over the working set)
_LOADS_PER_OP = 3


def modexp_square_multiply(base: int, exponent: int, modulus: int
                           ) -> tuple[int, list]:
    """Left-to-right square-and-multiply; returns (result, op trace).

    The trace lists the primitives executed ("square", "multiply",
    "reduce"), which is exactly what leaks through time.
    """
    if modulus <= 0:
        raise AttackError("modulus must be positive")
    if exponent < 0:
        raise AttackError("exponent must be non-negative")
    result = 1
    trace = []
    for bit in bin(exponent)[2:] if exponent else "0":
        result = result * result
        trace.append("square")
        result %= modulus
        trace.append("reduce")
        if bit == "1":
            result = result * base
            trace.append("multiply")
            result %= modulus
            trace.append("reduce")
    return result, trace


def random_exponent(bits: int, ones: int, seed: int = 0) -> int:
    """An exponent with exactly ``ones`` 1-bits (MSB always set)."""
    if bits <= 0:
        raise AttackError("bits must be positive")
    if not 1 <= ones <= bits:
        raise AttackError(f"ones must be in [1, {bits}]")
    gen = rng.generator_for(seed, "rsa-exponent", bits, ones)
    positions = gen.choice(bits - 1, size=ones - 1, replace=False) \
        if ones > 1 else []
    exponent = 1 << (bits - 1)
    for p in positions:
        exponent |= 1 << int(p)
    return exponent


class RSATimingOracle:
    """Times RSA decryptions on the simulated GPU."""

    def __init__(self, gpu: SimulatedGPU, modulus: int, base: int = 0x10001,
                 operand_base: int = 1 << 22, seed: int = 11):
        if modulus <= 1:
            raise AttackError("modulus must exceed 1")
        self.gpu = gpu
        self.modulus = modulus
        self.base = base
        self.operand_base = operand_base
        # operand working set: a few cache lines, warmed into L2
        line = gpu.spec.cache_line_bytes
        self.operand_addresses = [operand_base + i * line
                                  for i in range(_LOADS_PER_OP)]
        for partition in range(gpu.spec.num_partitions):
            probe = gpu.hier.sms_in_partition(partition)[0]
            gpu.memory.warm(probe, self.operand_addresses)

    def _kernel(self, block, trace):
        warp = block.warp(0)
        for op in trace:
            warp.alu(_ALU_PER_OP)
            warp.ldcg(self.operand_addresses[block.block_idx
                                             % _LOADS_PER_OP])

    def decrypt_timed(self, exponent: int, scheduler,
                      launch_index: int = 0) -> tuple:
        """(plaintext, cycles, sms) for one decryption."""
        result, trace = modexp_square_multiply(self.base, exponent,
                                               self.modulus)
        run = launch(self.gpu, self._kernel,
                     KernelSpec(grid_dim=2, block_dim=32, name="rsa"),
                     scheduler, args=(trace,), launch_index=launch_index,
                     cooperative=True)
        return result, run.elapsed_cycles, run.sms_used

    def timing_curve(self, scheduler, bits: int = 256, ones_values=None,
                     samples_per_point: int = 3) -> tuple:
        """(ones array, times array) across exponents (Fig 19 raw data)."""
        ones_values = list(ones_values) if ones_values is not None else \
            list(range(bits // 8, bits, bits // 8))
        xs, ys = [], []
        index = 0
        for ones in ones_values:
            for s in range(samples_per_point):
                exponent = random_exponent(bits, ones, seed=s)
                _, cycles, _ = self.decrypt_timed(exponent, scheduler,
                                                  launch_index=index)
                xs.append(ones)
                ys.append(cycles)
                index += 1
        return np.array(xs), np.array(ys)
