"""GPU timing side-channel reproduction (paper Section V).

Implements the two attacks the paper revisits — AES last-round key
recovery via coalescing-dependent timing [Jiang et al.] and RSA
square-and-multiply timing [Luo et al.] — on the simulated runtime, where
kernel timing inherits the NoC's placement-dependent latency.  Shows both
the paper's findings: non-uniform latency perturbs the attacks
(Implication 2) and random thread-block scheduling defeats them at zero
hardware cost (Implication 3).

This code exists to reproduce published academic security research for
defensive evaluation on a *simulated* device.
"""

from repro.sidechannel.aes import (aes_encrypt, expand_key, AESTimingOracle)
from repro.sidechannel.rsa import (modexp_square_multiply, RSATimingOracle,
                                   random_exponent)
from repro.sidechannel.attacks import (aes_key_byte_attack, rsa_ones_attack,
                                       coalescing_timing_sweep,
                                       square_kernel_timing)
from repro.sidechannel.defense import evaluate_defense, DefenseReport
from repro.sidechannel.probe import (aes_leakage, aes_probe_batch,
                                     probe_scheduler, rsa_leakage,
                                     rsa_probe_batch)
from repro.sidechannel.colocation import (fingerprint_sm, identify_sm,
                                          build_fingerprint_library)
from repro.sidechannel.covert import (CovertChannel, CovertTransmission,
                                      best_effort_channel)
from repro.sidechannel.access_pattern import (AccessPatternAttack,
                                              AccessPatternResult)

__all__ = [
    "aes_encrypt", "expand_key", "AESTimingOracle",
    "modexp_square_multiply", "RSATimingOracle", "random_exponent",
    "aes_key_byte_attack", "rsa_ones_attack", "coalescing_timing_sweep",
    "square_kernel_timing",
    "evaluate_defense", "DefenseReport",
    "aes_leakage", "aes_probe_batch", "probe_scheduler", "rsa_leakage",
    "rsa_probe_batch",
    "fingerprint_sm", "identify_sm", "build_fingerprint_library",
    "CovertChannel", "CovertTransmission", "best_effort_channel",
    "AccessPatternAttack", "AccessPatternResult",
]
