"""Inferring a victim's L2 access pattern from latency (paper Sec V-B).

The paper closes its attack discussion with: recent work "leveraged
distance in a multi-hop network and higher latency to determine the L2
access pattern ... the latency characteristics can potentially be
exploited to enable new types of side-channel attacks."  This module
implements that follow-on attack on the simulated device:

an attacker who (a) knows which SM the victim runs on (via the
co-location fingerprinting of :mod:`repro.sidechannel.colocation`) and
(b) has profiled that SM's per-slice latency table, observes the
victim's individual load latencies and classifies which L2 slice each
access went to by nearest-latency match.  Because V100-class latency
tables have ~2-cycle gaps between many slices and ~1 cycle of
measurement noise, single accesses already leak substantial
information; averaging a few repetitions recovers the full slice
sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AttackError
from repro.gpu.device import SimulatedGPU


@dataclass(frozen=True)
class AccessPatternResult:
    """Outcome of classifying a victim's observed access latencies."""
    true_slices: tuple
    inferred_slices: tuple
    candidates_per_access: tuple     # |slices within noise margin|

    @property
    def accuracy(self) -> float:
        hits = sum(a == b for a, b in
                   zip(self.true_slices, self.inferred_slices))
        return hits / len(self.true_slices)

    @property
    def mean_ambiguity(self) -> float:
        """Average number of slices compatible with each observation."""
        return float(np.mean(self.candidates_per_access))


class AccessPatternAttack:
    """Nearest-latency slice classifier for one victim SM."""

    def __init__(self, gpu: SimulatedGPU, victim_sm: int,
                 noise_margin_cycles: float = 3.0):
        if not 0 <= victim_sm < gpu.num_sms:
            raise AttackError(f"SM {victim_sm} out of range")
        if noise_margin_cycles <= 0:
            raise AttackError("noise margin must be positive")
        self.gpu = gpu
        self.victim_sm = victim_sm
        self.margin = noise_margin_cycles
        # profiling phase: the attacker measures the SM's latency table
        from repro.core.latency_bench import measure_l2_latency
        self.table = measure_l2_latency(gpu, victim_sm, samples=4)

    def classify(self, observed_cycles: float) -> tuple:
        """(best slice, number of candidate slices within the margin)."""
        deltas = np.abs(self.table - observed_cycles)
        best = int(np.argmin(deltas))
        candidates = int((deltas <= self.margin).sum())
        return best, max(candidates, 1)

    def observe_victim(self, slice_sequence, repeats: int = 3
                       ) -> AccessPatternResult:
        """Run a victim access sequence and classify each access.

        The victim performs one L1-bypassing load per listed slice; the
        attacker sees only the measured latencies.
        """
        slice_sequence = list(slice_sequence)
        if not slice_sequence:
            raise AttackError("victim sequence is empty")
        if repeats <= 0:
            raise AttackError("repeats must be positive")
        # the victim's loads go through the same warp LSU the attacker
        # profiled with, so the timing channels are directly comparable
        from repro.runtime.device_api import Warp
        memory = self.gpu.memory
        warp = Warp(self.victim_sm, memory, start_cycle=0.0)
        inferred, ambiguity = [], []
        for s in slice_sequence:
            address = memory.addresses_for_slice(s, 1)[0]
            memory.warm(self.victim_sm, [address])
            samples = [warp.ldcg(address) for _ in range(repeats)]
            best, candidates = self.classify(float(np.mean(samples)))
            inferred.append(best)
            ambiguity.append(candidates)
        return AccessPatternResult(
            true_slices=tuple(slice_sequence),
            inferred_slices=tuple(inferred),
            candidates_per_access=tuple(ambiguity))
