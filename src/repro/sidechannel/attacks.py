"""Attack harnesses: Fig 17 timing structure, AES and RSA key recovery.

``coalescing_timing_sweep`` reproduces Fig 17(a): warp latency vs number
of unique cache lines, per SM — linear with an SM-dependent intercept.
``aes_key_byte_attack`` is the correlation attack of [Jiang et al.]:
guess a last-round key byte, predict per-sample unique-line counts,
correlate with measured time; the true byte maximises Pearson r (Fig 18).
``rsa_ones_attack`` fits the #1-bits <-> time line of [Luo et al.]
(Fig 19) and reports how precisely timing reveals the key weight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import pearson
from repro.errors import AttackError
from repro.gpu.device import SimulatedGPU
from repro.runtime.kernel import KernelSpec
from repro.runtime.launcher import launch
from repro.runtime.scheduler import PinnedScheduler
from repro.sidechannel.aes import (_TABLE_ENTRY_BYTES, AESTimingOracle,
                                   last_round_inputs)
from repro.sidechannel.rsa import RSATimingOracle


# ---- Fig 17(a): latency vs unique cache lines ------------------------------

def coalescing_timing_sweep(gpu: SimulatedGPU, sms, max_lines: int = 18,
                            samples: int = 4, slice_id: int = 0) -> dict:
    """Average warp load latency vs unique-line count, per SM.

    Returns {sm: np.ndarray of length max_lines} (index i = i+1 unique
    lines).  All lines map to one controlled L2 slice (the paper's
    ``M[s]`` technique), so the relationship is cleanly linear with an
    SM-placement-dependent intercept — Fig 17(a)'s shifted parallel
    lines.
    """
    if max_lines <= 0 or samples <= 0:
        raise AttackError("max_lines and samples must be positive")
    addresses = gpu.memory.addresses_for_slice(slice_id, max_lines)
    for partition in range(gpu.spec.num_partitions):
        gpu.memory.warm(gpu.hier.sms_in_partition(partition)[0], addresses)

    def kernel(block, n, out):
        warp = block.warp(0)
        for _ in range(samples):
            out.append(warp.ldcg(addresses[:n]))

    results = {}
    for sm in sms:
        curve = np.empty(max_lines)
        for n in range(1, max_lines + 1):
            out: list = []
            launch(gpu, kernel, KernelSpec(1, 32, name="coalesce"),
                   PinnedScheduler([sm]), args=(n, out), cooperative=False)
            curve[n - 1] = float(np.mean(out))
        results[sm] = curve
    return results


# ---- AES key recovery (Fig 18) ------------------------------------------------

def _predicted_line_counts(ciphertexts: np.ndarray, guess: int,
                           position: int, sector_bytes: int) -> np.ndarray:
    """Per-sample unique T-table sectors implied by a key-byte guess."""
    entries_per_line = sector_bytes // _TABLE_ENTRY_BYTES
    counts = np.empty(ciphertexts.shape[0])
    for i, warp_ciphertexts in enumerate(ciphertexts):
        idx = last_round_inputs(warp_ciphertexts, guess, position)
        counts[i] = len(np.unique(idx // entries_per_line))
    return counts


@dataclass(frozen=True)
class AESAttackResult:
    """Correlation attack outcome for one key-byte position."""
    position: int
    correlations: np.ndarray     # per guess (0..255)
    best_guess: int
    true_byte: int

    @property
    def recovered(self) -> bool:
        return self.best_guess == self.true_byte

    @property
    def peak_correlation(self) -> float:
        return float(self.correlations[self.best_guess])


def aes_key_byte_attack(oracle: AESTimingOracle, ciphertexts: np.ndarray,
                        times: np.ndarray, position: int,
                        guesses=range(256)) -> AESAttackResult:
    """Correlate measured times against per-guess predicted line counts."""
    if ciphertexts.shape[0] != times.shape[0]:
        raise AttackError("ciphertexts/times length mismatch")
    if ciphertexts.shape[0] < 8:
        raise AttackError("need at least 8 samples")
    sector_bytes = oracle.gpu.spec.sector_bytes
    correlations = np.full(256, -np.inf)
    for guess in guesses:
        counts = _predicted_line_counts(ciphertexts, guess, position,
                                        sector_bytes)
        if counts.std() == 0:
            correlations[guess] = 0.0
        else:
            correlations[guess] = pearson(counts, times)
    best = int(np.argmax(correlations))
    return AESAttackResult(
        position=position,
        correlations=correlations,
        best_guess=best,
        true_byte=int(oracle.round_keys[10][position]),
    )


# ---- RSA (Fig 17b / Fig 19) ---------------------------------------------------

def square_kernel_timing(gpu: SimulatedGPU, fixed_sm: int, other_sms,
                         num_squares: int = 32) -> dict:
    """Square-kernel runtime with one SM fixed and the other varied.

    Reproduces Fig 17(b): cross-partition pairs pay bridge latency plus
    synchronisation overhead.
    """
    oracle = RSATimingOracle(gpu, modulus=(1 << 64) - 59)
    trace = ["square", "reduce"] * num_squares
    times = {}
    for idx, sm in enumerate(other_sms):
        if sm == fixed_sm:
            continue
        run = launch(gpu, oracle._kernel,
                     KernelSpec(grid_dim=2, block_dim=32, name="square"),
                     PinnedScheduler([fixed_sm, sm]), args=(trace,),
                     launch_index=idx, cooperative=True)
        times[sm] = run.elapsed_cycles
    return times


@dataclass(frozen=True)
class RSAAttackResult:
    """Linear-fit attack on the #1-bits <-> time relationship."""
    slope: float
    intercept: float
    r_squared: float
    ones: np.ndarray
    times: np.ndarray

    def infer_ones(self, measured_cycles: float) -> float:
        if self.slope <= 0:
            raise AttackError("no usable positive slope")
        return (measured_cycles - self.intercept) / self.slope

    def inference_spread(self) -> float:
        """Uncertainty (in 1-bits) induced by the timing residuals."""
        residuals = self.times - (self.intercept + self.slope * self.ones)
        return float((residuals.max() - residuals.min()) / self.slope) \
            if self.slope > 0 else np.inf


def rsa_ones_attack(ones: np.ndarray, times: np.ndarray) -> RSAAttackResult:
    """Least-squares fit of execution time against the number of 1-bits."""
    ones = np.asarray(ones, dtype=float)
    times = np.asarray(times, dtype=float)
    if ones.size != times.size or ones.size < 3:
        raise AttackError("need >=3 matched samples")
    slope, intercept = np.polyfit(ones, times, 1)
    predicted = intercept + slope * ones
    ss_res = float(((times - predicted) ** 2).sum())
    ss_tot = float(((times - times.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    return RSAAttackResult(slope=float(slope), intercept=float(intercept),
                           r_squared=r_squared, ones=ones, times=times)
