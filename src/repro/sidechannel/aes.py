"""AES-128 (real, vectorised) and its GPU timing oracle.

The encryption is a complete FIPS-197 AES-128, vectorised with numpy so a
warp's 32 blocks encrypt in one call.  The *timing oracle* executes the
last round's T-table lookups through the simulated warp LSU, so measured
time = (SM-placement-dependent intercept) + (issue slots x unique cache
lines) — the linear relationship prior GPU attacks exploit [Jiang et al.]
and Fig 17(a) plots per SM.
"""

from __future__ import annotations

import numpy as np

from repro import rng
from repro.errors import AttackError
from repro.units import MIB
from repro.gpu.device import SimulatedGPU
from repro.runtime.kernel import KernelSpec
from repro.runtime.launcher import launch
from repro.runtime.scheduler import PinnedScheduler

# ---- AES-128 ----------------------------------------------------------------

_SBOX = np.array([
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16], dtype=np.uint8)

_INV_SBOX = np.zeros(256, dtype=np.uint8)
_INV_SBOX[_SBOX] = np.arange(256, dtype=np.uint8)

_RCON = np.array([0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b,
                  0x36], dtype=np.uint8)

# row-major byte order within the 16-byte block, column-major AES state
_SHIFT_ROWS = np.array([0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6,
                        11])


def _xtime(values: np.ndarray) -> np.ndarray:
    """Multiply by x in GF(2^8)."""
    v = values.astype(np.uint16) << 1
    v ^= np.where(values & 0x80, 0x1B, 0).astype(np.uint16)
    return (v & 0xFF).astype(np.uint8)


def expand_key(key: bytes) -> np.ndarray:
    """AES-128 key schedule: 11 round keys of 16 bytes."""
    if len(key) != 16:
        raise AttackError("AES-128 key must be 16 bytes")
    words = [np.frombuffer(key, dtype=np.uint8)[i * 4:(i + 1) * 4].copy()
             for i in range(4)]
    for i in range(4, 44):
        temp = words[i - 1].copy()
        if i % 4 == 0:
            temp = np.roll(temp, -1)
            temp = _SBOX[temp]
            temp[0] ^= _RCON[i // 4 - 1]
        words.append(words[i - 4] ^ temp)
    return np.concatenate(words).reshape(11, 16)


def aes_encrypt(plaintexts: np.ndarray, round_keys: np.ndarray) -> np.ndarray:
    """Encrypt [N x 16] uint8 blocks; returns ciphertexts."""
    state = np.atleast_2d(np.asarray(plaintexts, dtype=np.uint8)).copy()
    if state.shape[1] != 16:
        raise AttackError("blocks must be 16 bytes")
    state ^= round_keys[0]
    for rnd in range(1, 10):
        state = _SBOX[state]
        state = state[:, _SHIFT_ROWS]
        # MixColumns on column-major state: bytes 4c..4c+3 form a column
        s = state.reshape(-1, 4, 4)
        t = s[:, :, 0] ^ s[:, :, 1] ^ s[:, :, 2] ^ s[:, :, 3]
        mixed = np.empty_like(s)
        for c in range(4):
            mixed[:, :, c] = (s[:, :, c] ^ t
                              ^ _xtime(s[:, :, c] ^ s[:, :, (c + 1) % 4]))
        state = mixed.reshape(-1, 16)
        state ^= round_keys[rnd]
    state = _SBOX[state]
    state = state[:, _SHIFT_ROWS]
    state ^= round_keys[10]
    return state


def last_round_inputs(ciphertexts: np.ndarray, key_byte_guess: int,
                      position: int) -> np.ndarray:
    """State bytes entering the last-round S-box at one position.

    The last round has no MixColumns: ``C[pos] = SBOX[s] ^ k10[pos]``, so
    a guess of the last-round-key byte inverts to the table index ``s``.
    This is the quantity the attacker predicts cache lines from.
    """
    c = np.asarray(ciphertexts, dtype=np.uint8)
    return _INV_SBOX[c[:, position] ^ np.uint8(key_byte_guess)]


# ---- GPU timing oracle --------------------------------------------------------

#: bytes per T-table entry (32-bit words, as in OpenSSL-style GPU AES)
_TABLE_ENTRY_BYTES = 4


class AESTimingOracle:
    """Runs warp-sized AES batches on the simulated GPU and times them.

    Each sample encrypts 32 random blocks (one per lane) and issues the
    last round's 16 T-table lookup instructions through the warp LSU; the
    returned time is what an attacker measures.  The T-table lives at a
    fixed device address, so its cache lines map to fixed L2 slices and
    the timing intercept depends on which SM the scheduler picked.
    """

    def __init__(self, gpu: SimulatedGPU, key: bytes, seed: int = 7,
                 table_base: int = MIB):
        self.gpu = gpu
        self.round_keys = expand_key(key)
        self.seed = seed
        self.table_base = table_base
        self._gen = rng.generator_for(seed, "aes-plaintexts")
        # warm the T-table into L2 from every partition once
        line = gpu.spec.cache_line_bytes
        table_lines = range(table_base, table_base + 256 * _TABLE_ENTRY_BYTES,
                            line)
        for partition in range(gpu.spec.num_partitions):
            probe_sm = gpu.hier.sms_in_partition(partition)[0]
            gpu.memory.warm(probe_sm, table_lines)

    def _kernel(self, block, plaintexts, out):
        warp = block.warp(0)
        ciphertexts = aes_encrypt(plaintexts, self.round_keys)
        # rounds 1..9 are compute + earlier table rounds, constant time
        warp.alu(900)
        start = warp.clock()
        for pos in range(16):
            # the device looks up T[s] at the true last-round inputs
            true_idx = last_round_inputs(ciphertexts,
                                         int(self.round_keys[10][pos]), pos)
            addresses = self.table_base + true_idx.astype(np.int64) \
                * _TABLE_ENTRY_BYTES
            warp.ldcg(list(addresses))
        elapsed = warp.clock() - start
        out.append((ciphertexts, elapsed))

    def sample(self, scheduler, launch_index: int = 0) -> tuple:
        """One measurement: (ciphertexts [32x16], time_cycles, sm_used)."""
        plaintexts = self._gen.integers(0, 256, size=(32, 16),
                                        dtype=np.uint8)
        out: list = []
        result = launch(self.gpu, self._kernel,
                        KernelSpec(grid_dim=1, block_dim=32, name="aes"),
                        scheduler, args=(plaintexts, out),
                        launch_index=launch_index, cooperative=False)
        ciphertexts, elapsed = out[0]
        return ciphertexts, float(elapsed), result.assignments[0]

    def collect(self, scheduler, num_samples: int) -> tuple:
        """(all ciphertexts [N x 32 x 16], times [N]) under a scheduler."""
        if num_samples <= 0:
            raise AttackError("num_samples must be positive")
        ciphertexts, times = [], []
        for i in range(num_samples):
            c, t, _sm = self.sample(scheduler, launch_index=i)
            ciphertexts.append(c)
            times.append(t)
        return np.stack(ciphertexts), np.array(times)

    def pinned_scheduler(self, sm: int) -> PinnedScheduler:
        return PinnedScheduler([sm])
