"""Digest-verified shared-memory segments: the generic IPC core.

Two transports ride POSIX shared memory instead of pickling payloads
through ``multiprocessing`` pipes: the serve worker tier
(:mod:`repro.serve.shm`, canonical-JSON response bytes) and the offline
sweep path (:mod:`repro.exec.shm`, array-valued shard results).  Both
need exactly the same machinery — create a segment, copy the payload in
once, ship a tiny ``(name, size, digest)`` descriptor, attach on the
other side, verify, unlink — so that machinery lives here and the
transports only add their policy (name prefix, size floor, payload
encoding).  Consumers pick one of two attach flavours: the copying,
whole-payload-verifying :func:`read_segment` (serve tier) or the
zero-copy :func:`map_segment`, which hands back a writable view over
the shared pages themselves (exec tier).

Segment layout (self-describing, so a leaked segment can be identified
without its descriptor)::

    [ 8 bytes  big-endian payload length ]
    [ 32 bytes raw SHA-256 of the payload ]
    [ payload ... ]

Ownership protocol: the consumer always unlinks.  The producer
unregisters the segment from its own ``resource_tracker`` (see
:func:`_untrack`) because otherwise the tracker of the *creating*
process would try to destroy the segment at exit — after the consumer
already unlinked it — and log spurious leak warnings.  A producer that
dies between creating a segment and its descriptor being consumed leaks
that one segment; :func:`sweep_orphans` removes such segments by
``(prefix, owner)`` name pattern when the owner's replacement spawns
(serve tier) or the pool tears down (exec tier).
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import mmap
import os
import struct
from dataclasses import dataclass
from pathlib import Path

#: Bytes of header before the payload: length (8) + raw digest (32).
HEADER_BYTES = 40

_LENGTH = struct.Struct(">Q")

#: Where Linux exposes POSIX shared memory as files (orphan sweeping is
#: best-effort and skipped on platforms without it).
_SHM_DIR = Path("/dev/shm")

#: Distinguishes segments of one producer process (identical payloads
#: would otherwise collide on a digest-derived name).
_SEGMENT_COUNTER = itertools.count()


class SegmentError(RuntimeError):
    """The segment was missing or its content failed digest check."""


@dataclass(frozen=True)
class SegmentRef:
    """A handle to payload bytes parked in a shared-memory segment."""

    name: str
    size: int          # payload bytes (the header is not counted)
    sha256: str


def _shared_memory():
    """The SharedMemory class (imported lazily: not on the hot path)."""
    from multiprocessing import shared_memory
    return shared_memory.SharedMemory


def shm_available() -> bool:
    """Can this platform create shared-memory segments at all?

    ``multiprocessing.shared_memory`` needs ``_posixshmem`` (or the
    Windows equivalent); minimal builds ship without it.  Callers use
    this to pick the pickle fallback *before* touching segment code.
    """
    try:
        _shared_memory()
    except ImportError:
        return False
    return True


def _write_raw_segment(name: str, parts) -> None:
    """Write a segment as a raw ``/dev/shm`` file with ``os.writev``.

    Byte-compatible with a ``SharedMemory`` segment (same file, same
    naming — consumers attach identically), but far cheaper to produce:
    one scatter-gather syscall lets the kernel allocate and fill the
    tmpfs pages at copy speed, where mapping-then-storing pays a fault
    trap per page and ``SharedMemory`` adds two resource-tracker pipe
    round-trips (each a wakeup of the tracker process — a scheduling
    quantum on a busy single core).
    """
    fd = os.open(_SHM_DIR / name, os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                 0o600)
    try:
        pending = list(parts)
        while pending:
            written = os.writev(fd, pending[:1024])   # IOV_MAX batches
            while pending and written >= len(pending[0]):
                written -= len(pending[0])
                pending.pop(0)
            if written:          # partial part: resume mid-buffer
                pending[0] = memoryview(pending[0])[written:]
    except BaseException:
        os.close(fd)
        with contextlib.suppress(OSError):
            os.unlink(_SHM_DIR / name)
        raise
    os.close(fd)


def _untrack(shm) -> None:
    """Unregister ``shm`` from this process's resource tracker.

    The producer hands ownership to the consumer, who unlinks.  Without
    this, the producer-side tracker would unlink the segment again at
    process exit and warn about a leak that never happened.  Private
    API, so failures are tolerated — the worst case is a harmless
    warning at producer exit.
    """
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(shm._name, "shared_memory")
    except (ImportError, AttributeError, KeyError):
        pass


def share_segment(parts, *, prefix: str, owner: int = 0,
                  hash_parts: int | None = None) -> SegmentRef:
    """Producer side: park payload bytes in a fresh segment.

    ``parts`` is one buffer or a sequence of buffers (scatter-gather:
    the exec transport writes a pickle stream plus every extracted
    array buffer without first concatenating them).  Returns the
    descriptor to ship.

    ``hash_parts`` picks the trust model.  ``None`` (default) digests
    the whole payload, for consumers that re-verify every byte with
    :func:`read_segment` — the serve tier, whose response bytes outlive
    the worker that made them.  An integer digests only that many
    leading parts plus every part *length*: the exec transport passes
    ``1`` so the digest covers its pickle stream and the exact layout,
    while the bulk array bytes stay unhashed — they sit in kernel-
    coherent shared memory consumed once by :func:`map_segment`, the
    same trust domain as the ``multiprocessing`` pipe they replace
    (which checksums nothing).  Hashing is the single largest cost of
    the transport, so this is what makes big-array segments cheaper
    than pickling.  Partial-hash segments *fail* :func:`read_segment`'s
    whole-payload check by construction — loudly, not wrongly.
    """
    if isinstance(parts, (bytes, bytearray, memoryview)):
        parts = (parts,)
    views = [memoryview(part).cast("B") for part in parts]
    size = sum(len(view) for view in views)
    if size == 0:
        raise ValueError("cannot share an empty payload")
    digest = hashlib.sha256()
    for view in (views if hash_parts is None else views[:hash_parts]):
        digest.update(view)
    if hash_parts is not None:
        for view in views:
            digest.update(_LENGTH.pack(len(view)))
    hexdigest = digest.hexdigest()
    name = f"{prefix}-{owner}-{os.getpid()}-{next(_SEGMENT_COUNTER)}"
    header = _LENGTH.pack(size) + bytes.fromhex(hexdigest)
    if _SHM_DIR.is_dir():
        _write_raw_segment(name, [header, *views])
        return SegmentRef(name=name, size=size, sha256=hexdigest)
    segment = _shared_memory()(create=True, size=HEADER_BYTES + size,
                               name=name)
    try:
        segment.buf[:HEADER_BYTES] = header
        offset = HEADER_BYTES
        for view in views:
            segment.buf[offset:offset + len(view)] = view
            offset += len(view)
    finally:
        segment.close()
    _untrack(segment)
    return SegmentRef(name=segment.name, size=size, sha256=hexdigest)


def read_segment(ref: SegmentRef, *, mutable: bool = False):
    """Consumer side: read, verify, and *unlink* the segment.

    The header's length and digest must both match the descriptor, and
    the payload must hash to that digest — a truncated, torn, or
    swapped segment fails loudly instead of returning wrong bytes.
    ``mutable=True`` returns a ``bytearray`` (one copy either way), so
    NumPy views reconstructed over it are writable.
    """
    cls = _shared_memory()
    try:
        segment = cls(name=ref.name)
    except FileNotFoundError:
        raise SegmentError(
            f"shared segment {ref.name!r} vanished before it was read")
    try:
        header = bytes(segment.buf[:HEADER_BYTES])
        end = HEADER_BYTES + ref.size
        payload = (bytearray if mutable else bytes)(
            segment.buf[HEADER_BYTES:end])
    finally:
        segment.close()
        with contextlib.suppress(FileNotFoundError):
            segment.unlink()
    if (len(header) < HEADER_BYTES
            or _LENGTH.unpack(header[:8])[0] != ref.size
            or header[8:HEADER_BYTES].hex() != ref.sha256):
        raise SegmentError(
            f"shared segment {ref.name!r} header does not match its "
            "descriptor")
    if hashlib.sha256(payload).hexdigest() != ref.sha256:
        raise SegmentError(
            f"shared segment {ref.name!r} failed its digest check")
    return payload


def map_available() -> bool:
    """Can segments be *mapped* in place (:func:`map_segment`)?

    Mapping needs POSIX shared memory exposed as files (Linux
    ``/dev/shm``); elsewhere consumers fall back to the copying
    :func:`read_segment`.
    """
    return shm_available() and _SHM_DIR.is_dir()


def map_segment(ref: SegmentRef) -> memoryview:
    """Consumer side, zero-copy: map the segment and unlink its name.

    Returns a writable :class:`memoryview` of the payload backed
    directly by the shared pages — nothing is copied and the payload is
    never re-hashed, so consuming a segment costs the same few syscalls
    regardless of size.  The header's length and digest must match the
    descriptor (this rejects a swapped or truncated segment; whole-
    payload verification is :func:`read_segment`'s job, for transports
    that cannot trust the producer).

    The name is unlinked before returning: the kernel keeps the pages
    alive until the last view over the mapping is dropped (deferred
    free), so NumPy arrays built over the returned buffer own their
    storage for as long as they live, and a crashed consumer leaks no
    name for :func:`sweep_orphans` to find.
    """
    try:
        fd = os.open(_SHM_DIR / ref.name, os.O_RDWR)
    except OSError:
        raise SegmentError(
            f"shared segment {ref.name!r} vanished before it was mapped")
    try:
        mapped = mmap.mmap(fd, 0)
    finally:
        os.close(fd)
    header = bytes(mapped[:HEADER_BYTES])
    if (len(mapped) < HEADER_BYTES + ref.size
            or _LENGTH.unpack(header[:8])[0] != ref.size
            or header[8:HEADER_BYTES].hex() != ref.sha256):
        mapped.close()
        with contextlib.suppress(OSError):
            os.unlink(_SHM_DIR / ref.name)
        raise SegmentError(
            f"shared segment {ref.name!r} header does not match its "
            "descriptor")
    with contextlib.suppress(OSError):
        os.unlink(_SHM_DIR / ref.name)
    return memoryview(mapped)[HEADER_BYTES:HEADER_BYTES + ref.size]


def sweep_orphans(prefix: str, owner: int | None = None) -> int:
    """Unlink segments a dead producer left behind.

    ``owner=None`` sweeps every segment under ``prefix``; a specific
    owner id sweeps only that producer's segments (the serve tier's
    per-worker respawn).  Best-effort and Linux-only (``/dev/shm``);
    returns the number of segments removed.
    """
    if not _SHM_DIR.is_dir():
        return 0
    pattern = (f"{prefix}-*" if owner is None else f"{prefix}-{owner}-*")
    removed = 0
    for path in _SHM_DIR.glob(pattern):
        with contextlib.suppress(OSError):
            path.unlink()
            removed += 1
    return removed
