"""Workload address-trace generators (synthetic + Rodinia-style)."""

from repro.workloads.synthetic import (streaming_trace, random_trace,
                                       camping_trace)
from repro.workloads.rodinia import (bfs_trace, gaussian_trace,
                                     hotspot_trace, kmeans_trace,
                                     pathfinder_trace,
                                     slice_traffic_over_time, TimestepTrace)
from repro.workloads.replay import replay_trace, ReplayResult, StepResult
from repro.workloads.intensity import (intensity_profile, step_intensity,
                                       TRACE_PROFILES)

__all__ = ["streaming_trace", "random_trace", "camping_trace",
           "bfs_trace", "gaussian_trace", "hotspot_trace", "kmeans_trace",
           "pathfinder_trace", "slice_traffic_over_time", "TimestepTrace",
           "replay_trace", "ReplayResult", "StepResult",
           "intensity_profile", "step_intensity", "TRACE_PROFILES"]
