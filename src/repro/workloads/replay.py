"""Trace replay: drive workload address traces through the device.

``replay_trace`` feeds a :class:`~repro.workloads.rodinia.TimestepTrace`
into the memory subsystem from a set of SMs — addresses are coalesced
per warp-sized chunk, hashed, looked up in the sliced L2 and counted by
the same per-slice counters the profiler reads.  Each timestep also gets
a steady-state bandwidth estimate from the flow solver based on which
slices the step actually touched, giving a per-step execution-time
estimate.

This is the bridge between the synthetic workloads (Fig 16) and the
device model: the same traces that demonstrate hash balance can be
"run", yielding per-slice traffic, hit rates and a time estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.gpu.device import SimulatedGPU
from repro.workloads.rodinia import TimestepTrace

_WARP_SIZE = 32


@dataclass(frozen=True)
class StepResult:
    """Device-level outcome of one trace timestep."""
    step: int
    requests: int              # coalesced memory requests issued
    hits: int
    slice_counts: np.ndarray   # per-slice request counts
    bandwidth_gbps: float      # steady-state estimate for this step
    est_seconds: float         # bytes moved / bandwidth


@dataclass(frozen=True)
class ReplayResult:
    """Aggregate outcome of replaying a trace."""
    trace_name: str
    steps: tuple               # StepResult per timestep

    @property
    def total_requests(self) -> int:
        return sum(s.requests for s in self.steps)

    @property
    def hit_rate(self) -> float:
        total = self.total_requests
        if total == 0:
            raise ConfigurationError("trace issued no requests")
        return sum(s.hits for s in self.steps) / total

    @property
    def est_total_seconds(self) -> float:
        return sum(s.est_seconds for s in self.steps)

    def slice_traffic(self) -> np.ndarray:
        """[timestep x slice] counts, as the profiler would report."""
        return np.stack([s.slice_counts for s in self.steps])


def _coalesce_step(addresses: np.ndarray, sector_bytes: int) -> np.ndarray:
    """Per warp-sized chunk, dedupe to unique sector base addresses."""
    sectors = []
    shift = np.uint64(sector_bytes.bit_length() - 1)
    addrs = np.asarray(addresses, dtype=np.uint64)
    for start in range(0, len(addrs), _WARP_SIZE):
        chunk = addrs[start:start + _WARP_SIZE] >> shift
        sectors.append(np.unique(chunk) << shift)
    return np.concatenate(sectors) if sectors else np.empty(0, np.uint64)


def replay_trace(gpu: SimulatedGPU, trace: TimestepTrace, sms=None
                 ) -> ReplayResult:
    """Run a trace on the device from ``sms`` (default: one full GPC)."""
    if trace.num_steps == 0:
        raise ConfigurationError("trace has no timesteps")
    sms = list(sms) if sms is not None else gpu.hier.sms_in_gpc(0)
    if not sms:
        raise ConfigurationError("need at least one SM")
    memory = gpu.memory
    spec = gpu.spec
    steps = []
    for step_idx, addresses in enumerate(trace.steps):
        requests = _coalesce_step(addresses, spec.sector_bytes)
        counts = np.zeros(spec.num_slices, dtype=np.int64)
        hits = 0
        touched = set()
        for i, address in enumerate(requests):
            sm = sms[i % len(sms)]
            result = memory.access(sm, int(address), sample_jitter=False)
            counts[result.service_slice] += 1
            hits += result.hit
            touched.add(result.home_slice)
        if touched:
            traffic = {sm: sorted(touched) for sm in sms}
            bandwidth = gpu.topology.solve(traffic).total_gbps
        else:
            bandwidth = 0.0
        moved = len(requests) * spec.sector_bytes
        est = moved / (bandwidth * units.GB) if bandwidth > 0 else 0.0
        steps.append(StepResult(
            step=step_idx, requests=len(requests), hits=int(hits),
            slice_counts=counts, bandwidth_gbps=bandwidth,
            est_seconds=est))
    return ReplayResult(trace_name=trace.name, steps=tuple(steps))
