"""Rodinia-style workload traces: BFS and Gaussian elimination (Fig 16).

The paper plots per-L2-slice traffic over time for Rodinia's ``bfs`` and
``gaussian`` on a V100, showing that although traffic *volume* varies
wildly across timesteps, the *distribution* across slices stays balanced
thanks to address hashing.  We generate synthetic traces with the same
structure:

* **BFS**: frontier expansion over a random graph in CSR layout — per
  level, reads of the frontier's adjacency lists (irregular, data
  dependent) plus visited-flag updates.  Frontier size grows then decays,
  giving the bursty time profile.
* **Gaussian elimination**: for each pivot step k over an NxN matrix,
  stream the shrinking trailing submatrix — per-step traffic decays as
  (N-k)^2, with the sharp volume ramp-down the paper's Fig 16(b) shows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import rng
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TimestepTrace:
    """Addresses grouped by timestep (kernel launch / BFS level)."""
    name: str
    steps: tuple        # tuple of np.ndarray address vectors

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def total_accesses(self) -> int:
        return sum(len(s) for s in self.steps)

    def volume_profile(self) -> np.ndarray:
        """Accesses per timestep (the varying intensity in Fig 16)."""
        return np.array([len(s) for s in self.steps])


def bfs_trace(num_nodes: int = 4096, avg_degree: int = 8,
              line_bytes: int = 128, seed: int = 0) -> TimestepTrace:
    """Level-synchronous BFS over a random graph, as address timesteps."""
    if num_nodes <= 1 or avg_degree <= 0:
        raise ConfigurationError("need >1 nodes and positive degree")
    gen = rng.generator_for(seed, "bfs", num_nodes, avg_degree)
    degrees = gen.poisson(avg_degree, size=num_nodes).clip(1)
    offsets = np.concatenate([[0], np.cumsum(degrees)])
    edges = gen.integers(0, num_nodes, size=int(offsets[-1]))

    node_base = 0
    edge_base = num_nodes * 8          # offsets array region
    visited_base = edge_base + len(edges) * 4

    visited = np.zeros(num_nodes, dtype=bool)
    frontier = np.array([0])
    visited[0] = True
    steps = []
    while frontier.size:
        addrs = []
        next_frontier = []
        for u in frontier:
            addrs.append(node_base + int(u) * 8)              # CSR offsets
            lo, hi = int(offsets[u]), int(offsets[u + 1])
            addrs.extend(edge_base + 4 * e for e in range(lo, hi))
            for v in edges[lo:hi]:
                addrs.append(visited_base + int(v))           # visited flag
                if not visited[v]:
                    visited[v] = True
                    next_frontier.append(int(v))
        steps.append(np.asarray(addrs, dtype=np.uint64))
        frontier = np.asarray(next_frontier, dtype=np.int64)
    return TimestepTrace("bfs", tuple(steps))


def gaussian_trace(n: int = 192, line_bytes: int = 128,
                   element_bytes: int = 8, max_steps: int | None = None
                   ) -> TimestepTrace:
    """Gaussian elimination: stream the trailing submatrix per pivot."""
    if n <= 1:
        raise ConfigurationError("matrix must be at least 2x2")
    steps = []
    limit = max_steps if max_steps is not None else n - 1
    for k in range(min(n - 1, limit)):
        rows = np.arange(k + 1, n, dtype=np.uint64)
        cols = np.arange(k, n, dtype=np.uint64)
        rr, cc = np.meshgrid(rows, cols, indexing="ij")
        addrs = (rr * np.uint64(n) + cc) * np.uint64(element_bytes)
        # touch the pivot row too
        pivot = (np.uint64(k) * np.uint64(n) + cols) * np.uint64(element_bytes)
        steps.append(np.concatenate([pivot, addrs.ravel()]))
    return TimestepTrace("gaussian", tuple(steps))


def hotspot_trace(grid: int = 128, steps: int = 20,
                  element_bytes: int = 4) -> TimestepTrace:
    """Hotspot-style 5-point stencil over a 2-D grid, per iteration.

    Each timestep reads every cell plus its four neighbours — constant
    volume over time, dense and regular (the easy case for hashing).
    """
    if grid < 3 or steps <= 0:
        raise ConfigurationError("need a >=3x3 grid and positive steps")
    rows = np.arange(1, grid - 1, dtype=np.int64)
    cols = np.arange(1, grid - 1, dtype=np.int64)
    rr, cc = np.meshgrid(rows, cols, indexing="ij")
    centre = rr * grid + cc
    stencil = np.concatenate([centre, centre - 1, centre + 1,
                              centre - grid, centre + grid], axis=None)
    addrs = (stencil.astype(np.uint64) * np.uint64(element_bytes))
    return TimestepTrace("hotspot", tuple(addrs for _ in range(steps)))


def kmeans_trace(num_points: int = 8192, num_clusters: int = 16,
                 dims: int = 8, iterations: int = 6,
                 element_bytes: int = 4, seed: int = 0) -> TimestepTrace:
    """K-means assignment phase: stream points, gather cluster centres.

    Point reads are streaming; centre reads are a small hot set — a
    mixed regular/irregular pattern per iteration.
    """
    if num_points <= 0 or num_clusters <= 0 or dims <= 0 or iterations <= 0:
        raise ConfigurationError("kmeans parameters must be positive")
    gen = rng.generator_for(seed, "kmeans", num_points, num_clusters)
    point_base = 0
    centre_base = num_points * dims * element_bytes
    steps = []
    for _ in range(iterations):
        points = (np.arange(num_points * dims, dtype=np.uint64)
                  * np.uint64(element_bytes) + np.uint64(point_base))
        assignments = gen.integers(0, num_clusters, size=num_points)
        centres = (np.uint64(centre_base)
                   + (assignments[:, None] * dims
                      + np.arange(dims)[None, :]).astype(np.uint64)
                   * np.uint64(element_bytes))
        steps.append(np.concatenate([points, centres.ravel()]))
    return TimestepTrace("kmeans", tuple(steps))


def pathfinder_trace(width: int = 4096, rows: int = 24,
                     element_bytes: int = 4) -> TimestepTrace:
    """Pathfinder-style wavefront: one row plus its 3 neighbours per step.

    Constant, modest per-step volume — a narrow rolling working set.
    """
    if width < 2 or rows < 2:
        raise ConfigurationError("need width>=2 and rows>=2")
    steps = []
    cols = np.arange(width, dtype=np.uint64)
    for r in range(1, rows):
        prev = (np.uint64((r - 1) * width) + cols) * np.uint64(element_bytes)
        left = np.roll(prev, 1)
        right = np.roll(prev, -1)
        cur = (np.uint64(r * width) + cols) * np.uint64(element_bytes)
        steps.append(np.concatenate([prev, left, right, cur]))
    return TimestepTrace("pathfinder", tuple(steps))


def slice_traffic_over_time(trace: TimestepTrace, hasher,
                            coalesce: bool = True) -> np.ndarray:
    """[timestep x slice] request counts through an address hasher.

    With ``coalesce=True`` (default) addresses are deduplicated to cache
    lines per timestep, modelling the warp coalescer: the NoC sees one
    request per unique line, which is what the paper's per-slice traffic
    counters measure (Fig 16).
    """
    out = np.zeros((trace.num_steps, hasher.num_slices), dtype=np.int64)
    shift = np.uint64(hasher.line_bytes.bit_length() - 1)
    for t, addrs in enumerate(trace.steps):
        addrs = np.asarray(addrs, dtype=np.uint64)
        if coalesce:
            addrs = np.unique(addrs >> shift) << shift
        slices = hasher.slice_of_array(addrs)
        out[t] = np.bincount(slices, minlength=hasher.num_slices)
    return out
