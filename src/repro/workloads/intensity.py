"""Request-intensity profiles: workload traces as traffic shapes.

The open-loop traffic generator (:mod:`repro.traffic`) supports a
*trace-driven* arrival process: instead of a closed-form rate function,
the per-window offered load follows the volume profile of a real
workload trace — BFS's frontier burst, Gaussian elimination's quadratic
ramp-down — scaled to a target mean rate.  This module is the bridge:
it turns a :class:`~repro.workloads.rodinia.TimestepTrace` (addresses
per timestep) into a normalized intensity vector (mean 1.0, one entry
per timestep) that the generator can stretch over any replay duration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.rodinia import (TimestepTrace, bfs_trace,
                                     gaussian_trace, hotspot_trace,
                                     kmeans_trace, pathfinder_trace)

#: Named trace factories a traffic spec may reference by string.
TRACE_PROFILES = {
    "bfs": bfs_trace,
    "gaussian": gaussian_trace,
    "hotspot": hotspot_trace,
    "kmeans": kmeans_trace,
    "pathfinder": pathfinder_trace,
}


def step_intensity(trace: TimestepTrace) -> np.ndarray:
    """Per-timestep access volume, normalized to mean 1.0.

    Multiplying by a target mean rate gives the per-step offered rate;
    an all-empty trace is a configuration error, not a zero profile.
    """
    volumes = np.array([len(step) for step in trace.steps], dtype=float)
    if volumes.size == 0 or volumes.sum() == 0:
        raise ConfigurationError(
            f"trace {trace.name!r} has no accesses to shape traffic with")
    return volumes / volumes.mean()


def intensity_profile(name: str, seed: int = 0) -> np.ndarray:
    """Normalized intensity vector for a named workload trace.

    The factories are deterministic given ``seed`` (they draw through
    :mod:`repro.rng`), so a traffic spec naming a profile compiles to
    the same schedule everywhere.
    """
    factory = TRACE_PROFILES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown trace profile {name!r}; "
            f"known: {', '.join(sorted(TRACE_PROFILES))}")
    try:
        trace = factory(seed=seed)
    except TypeError:       # a factory without a seed parameter
        trace = factory()
    return step_intensity(trace)
