"""Synthetic memory-access traces.

Used to exercise the address hash: streaming (sequential strided, like the
bandwidth microbenchmark), uniform random, and an adversarial *camping*
pattern that strides in a way that would hammer one channel on an
unhashed (modulo-interleaved) GPU — the failure mode address hashing
exists to prevent (paper Section IV-C).
"""

from __future__ import annotations

import numpy as np

from repro import rng
from repro.errors import ConfigurationError


def streaming_trace(num_accesses: int, line_bytes: int = 128,
                    stride_lines: int = 1, start: int = 0) -> np.ndarray:
    """Sequential strided line addresses (Algorithm 2's access pattern)."""
    if num_accesses <= 0 or stride_lines <= 0:
        raise ConfigurationError("num_accesses and stride must be positive")
    idx = np.arange(num_accesses, dtype=np.uint64)
    return (np.uint64(start)
            + idx * np.uint64(stride_lines) * np.uint64(line_bytes))


def random_trace(num_accesses: int, region_bytes: int,
                 line_bytes: int = 128, seed: int = 0) -> np.ndarray:
    """Uniform random line-aligned addresses within a region."""
    if num_accesses <= 0 or region_bytes < line_bytes:
        raise ConfigurationError("need a positive count and a region "
                                 ">= one line")
    gen = rng.generator_for(seed, "random-trace", num_accesses, region_bytes)
    lines = gen.integers(0, region_bytes // line_bytes, size=num_accesses,
                         dtype=np.uint64)
    return lines * np.uint64(line_bytes)


def camping_trace(num_accesses: int, num_channels: int,
                  line_bytes: int = 128) -> np.ndarray:
    """Adversarial stride: every access lands on channel 0 under naive
    modulo interleaving (``line % C == 0``).  A hashed GPU spreads it."""
    if num_accesses <= 0 or num_channels <= 0:
        raise ConfigurationError("counts must be positive")
    idx = np.arange(num_accesses, dtype=np.uint64)
    return idx * np.uint64(num_channels) * np.uint64(line_bytes)
