"""Deterministic noise streams.

Real-hardware measurements carry run-to-run jitter; the simulated device
reproduces that with *deterministic* per-key noise so experiments are
repeatable (tests can assert exact statistics) while still exhibiting the
measurement spread visible in the paper's histograms.

Each logical noise source derives an independent :class:`numpy.random
.Generator` from a stable hash of (seed, key), so e.g. the jitter stream for
``("latency", sm_id, slice_id)`` never changes when unrelated streams are
consumed.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np


def _digest(seed: int, key: Iterable) -> int:
    text = repr((int(seed), tuple(key))).encode()
    return int.from_bytes(hashlib.sha256(text).digest()[:8], "little")


def generator_for(seed: int, *key) -> np.random.Generator:
    """Return an independent, reproducible Generator for (seed, key)."""
    return np.random.default_rng(_digest(seed, key))


def jitter(seed: int, *key, sigma: float = 1.0, n: int = 1) -> np.ndarray:
    """Gaussian jitter samples for a keyed stream (deterministic)."""
    return generator_for(seed, *key).normal(0.0, sigma, size=n)


def uniform_offset(seed: int, *key, low: float, high: float) -> float:
    """A single deterministic uniform draw for a keyed stream."""
    return float(generator_for(seed, *key).uniform(low, high))
