"""The unified engine registry: every ``engine=`` selector in one place.

Three execution domains grew their own engine plumbing — the device
measurement fast path (``repro.core.fastpath``), the batched mesh kernel
(``repro.noc.mesh.fastmesh``) and now the batched VC/credit mesh
(``repro.noc.mesh.vcmesh_batched``) — each with a hand-maintained name
tuple, a fail-fast resolver and an ad-hoc cache fingerprint.  This
module replaces those per-site checks with ONE registry:

* :func:`register` declares an engine under a *domain* (``"device"``,
  ``"mesh"``, ``"vcmesh"``) with an optional version fingerprint and
  capability flags;
* :func:`resolve` validates an ``engine=`` argument against a domain
  (``None`` means the domain default);
* :func:`fingerprint` / :func:`fingerprint_for` produce the cache-key
  fragment :func:`repro.exec.cache.cache_key` folds in, so a cached
  result is invalidated exactly when the engine that produced it is
  re-versioned;
* :func:`describe` lists the catalogue for ``repro engines`` and the
  serve endpoint parameter schemas.

The golden ``"scalar"`` engine of every domain is *version-free by
design*: its results define correctness, so its fingerprint is just the
name.  Every non-golden engine MUST register a ``version`` plus the
``version_field`` under which it appears in fingerprints — the REP009
lint rule fails the build otherwise (a missing version silently serves
stale cache entries across kernel changes).

Version constants live here (the registry owns fingerprints); the
engine packages re-export them for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Bumped whenever the vectorized measurement engine changes in a way
#: that *could* alter results; folded into ResultCache keys.
FASTPATH_VERSION = 1

#: Same contract for the batched mesh kernel.
FASTMESH_VERSION = 1

#: Same contract for the batched VC/credit mesh kernel.
VCMESH_VERSION = 1


@dataclass(frozen=True)
class Engine:
    """One registered engine implementation."""
    domain: str
    name: str
    version: int | None = None
    version_field: str | None = None
    capabilities: frozenset = field(default_factory=frozenset)
    summary: str = ""
    default: bool = False

    @property
    def qualified(self) -> str:
        return f"{self.domain}:{self.name}"

    @property
    def golden(self) -> bool:
        """Version-free engines define correctness for their domain."""
        return self.version is None

    def fingerprint(self) -> dict:
        if self.version is None:
            return {"name": self.name}
        return {"name": self.name, self.version_field: self.version}


_REGISTRY: dict[tuple[str, str], Engine] = {}
_DEFAULTS: dict[str, str] = {}


def register(domain: str, name: str, *, version: int | None = None,
             version_field: str | None = None,
             capabilities: tuple = (), summary: str = "",
             default: bool = False) -> Engine:
    """Declare an engine; duplicate (domain, name) pairs are rejected.

    Non-golden engines (``version is not None``) must name the
    ``version_field`` their fingerprint carries; a ``version_field``
    ending in ``_version`` keeps fingerprints self-describing.
    """
    if (domain, name) in _REGISTRY:
        raise ConfigurationError(
            f"engine {domain}:{name} registered twice")
    if version is not None and not (version_field or "").endswith("_version"):
        raise ConfigurationError(
            f"engine {domain}:{name} has a version but no *_version "
            "fingerprint field")
    if version is None and version_field is not None:
        raise ConfigurationError(
            f"engine {domain}:{name} names a version_field without a "
            "version")
    engine = Engine(domain=domain, name=name, version=version,
                    version_field=version_field,
                    capabilities=frozenset(capabilities),
                    summary=summary, default=default)
    _REGISTRY[(domain, name)] = engine
    if default:
        if domain in _DEFAULTS:
            raise ConfigurationError(
                f"domain {domain!r} already has default engine "
                f"{_DEFAULTS[domain]!r}")
        _DEFAULTS[domain] = name
    return engine


def domains() -> tuple:
    """Registered domain names, in registration order."""
    seen: list[str] = []
    for domain, _name in _REGISTRY:
        if domain not in seen:
            seen.append(domain)
    return tuple(seen)


def names(domain: str) -> tuple:
    """Engine names of a domain, in registration order."""
    found = tuple(n for d, n in _REGISTRY if d == domain)
    if not found:
        raise ConfigurationError(f"unknown engine domain {domain!r}")
    return found


def get(domain: str, name: str) -> Engine:
    engine = _REGISTRY.get((domain, name))
    if engine is None:
        raise ConfigurationError(
            f"unknown engine {name!r}; use one of "
            f"{', '.join(names(domain))}")
    return engine


def default_name(domain: str) -> str:
    """The domain's default engine (what ``engine=None`` resolves to)."""
    name = _DEFAULTS.get(domain)
    if name is None:
        raise ConfigurationError(
            f"engine domain {domain!r} has no default engine")
    return name


def resolve(domain: str, engine: str | None,
            default: str | None = None) -> str:
    """Validate an ``engine=`` argument against a domain.

    ``None`` resolves to ``default`` when given, else the domain's
    registered default.  Unknown names fail fast with the accepted
    vocabulary, exactly like the per-site checks this replaces.
    """
    if engine is None:
        engine = default if default is not None else default_name(domain)
    return get(domain, engine).name


def fingerprint(domain: str, engine: str | None) -> dict:
    """Cache-key fragment identifying a domain engine."""
    return get(domain, resolve(domain, engine)).fingerprint()


def fingerprint_for(ref: str) -> dict:
    """Fingerprint from an engine reference string.

    ``"domain:name"`` is exact; a bare name is accepted when it is
    unambiguous — either unique across domains or (like ``"scalar"``)
    fingerprint-identical everywhere it appears.
    """
    domain, sep, name = ref.partition(":")
    if sep:
        return get(domain, name).fingerprint()
    matches = [e for e in _REGISTRY.values() if e.name == ref]
    if not matches:
        raise ConfigurationError(f"unknown engine {ref!r}")
    prints = [e.fingerprint() for e in matches]
    if any(p != prints[0] for p in prints[1:]):
        candidates = ", ".join(e.qualified for e in matches)
        raise ConfigurationError(
            f"ambiguous engine {ref!r}; qualify as one of {candidates}")
    return prints[0]


def describe() -> list[dict]:
    """JSON catalogue of every registered engine (for CLI/serve)."""
    return [{"domain": e.domain, "name": e.name, "version": e.version,
             "version_field": e.version_field, "golden": e.golden,
             "default": e.default,
             "capabilities": sorted(e.capabilities),
             "summary": e.summary}
            for e in _REGISTRY.values()]


# ---------------------------------------------------------------------------
# The registrations.  Implementations stay in their packages; only the
# declaration lives here so one file answers "what engines exist".
# ---------------------------------------------------------------------------

# The ``zerocopy`` capability marks engines whose sharded sweep entry
# points return ndarray-valued shard results, eligible for the
# shared-memory transport of repro.exec.shm when run with jobs > 1.

register("device", "scalar", default=True,
         capabilities=("golden", "zerocopy"),
         summary="interpreter warps via repro.runtime (golden model)")
register("device", "vectorized",
         version=FASTPATH_VERSION, version_field="fastpath_version",
         capabilities=("vectorized", "device-state", "zerocopy"),
         summary="batched NumPy Algorithm 1/2 fast path "
                 "(repro.core.fastpath)")

register("mesh", "scalar",
         capabilities=("golden",),
         summary="per-flit Mesh2D interpreter (golden model)")
register("mesh", "batched", default=True,
         version=FASTMESH_VERSION, version_field="fastmesh_version",
         capabilities=("batched", "lockstep-lanes"),
         summary="struct-of-arrays lockstep mesh kernel "
                 "(repro.noc.mesh.fastmesh)")

register("vcmesh", "scalar",
         capabilities=("golden", "virtual-channels", "credit-flow",
                       "zerocopy"),
         summary="credit-based wormhole VC router interpreter "
                 "(repro.noc.mesh.vc)")
register("vcmesh", "batched", default=True,
         version=VCMESH_VERSION, version_field="vcmesh_version",
         capabilities=("batched", "lockstep-lanes", "virtual-channels",
                       "credit-flow", "zerocopy"),
         summary="struct-of-arrays lockstep VC/credit mesh kernel "
                 "(repro.noc.mesh.vcmesh_batched)")
