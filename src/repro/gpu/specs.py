"""GPU specifications (paper Table I) plus simulation calibration constants.

The paper characterises three NVIDIA GPUs.  :class:`GPUSpec` captures both
the public microarchitecture parameters (Table I) and the calibration
constants our simulated device needs to reproduce the paper's measured
latency/bandwidth shapes.  Calibration constants are documented inline with
the figure they were fitted against.

Notes on modelling choices
--------------------------
* We model the *full die* organisation (e.g. 84 SMs for GV100, 128 for
  GA100, 144 for GH100) because hierarchy symmetry, not the exact enabled-SM
  count, determines every observation in the paper.
* ``gpc_partition`` maps each GPC to a die partition.  The paper's figures
  use inconsistent ID labellings across Fig 6/8/17 (profiler vs logical
  enumeration); we use the contiguous assignment of Fig 6's caption
  (GPC 0-3 left, GPC 4-7 right) and note the labelling delta in
  EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GIGA, MIB


@dataclass(frozen=True)
class GPUSpec:
    """Microarchitecture + calibration description of one GPU model."""

    name: str

    # ---- Table I microarchitecture -------------------------------------
    num_gpcs: int
    tpcs_per_gpc: int
    sms_per_tpc: int = 2
    tpcs_per_cpc: int = 0          # 0 = no CPC hierarchy level (pre-H100)
    num_partitions: int = 1
    num_mps: int = 4               # memory partitions
    slices_per_mp: int = 8         # L2 slices per MP
    l2_capacity_bytes: int = 6 * MIB
    mem_bandwidth_gbps: float = 900.0   # peak off-chip DRAM bandwidth
    core_clock_hz: float = 1.38e9
    cache_line_bytes: int = 128
    sector_bytes: int = 32
    has_dsmem: bool = False        # distributed shared memory (H100)
    local_l2_policy: bool = False  # H100 partition-local L2 caching

    # ---- Floorplan (approximate die geometry, mm) ----------------------
    die_width_mm: float = 33.0
    die_height_mm: float = 26.0
    #: vertical wire distance weight: the NoC spine runs horizontally, so
    #: vertical runs (within GPC columns / slice stacks) are shorter wires.
    wire_y_factor: float = 0.4

    # ---- Latency model calibration (cycles unless noted) ---------------
    sm_pipeline_cycles: float = 30.0   # L1 lookup/bypass + LSU issue
    l2_hit_cycles: float = 65.0        # slice tag+data access
    l1_hit_cycles: float = 28.0        # per-SM L1 hit (when not bypassed)
    l1_capacity_bytes: int = 128 * 1024
    noc_base_oneway_cycles: float = 20.0   # router stages per direction
    cycles_per_mm: float = 1.75        # repeated-wire delay
    partition_cross_oneway_cycles: float = 0.0  # extra per crossing (A100)
    dram_miss_penalty_cycles: float = 220.0     # extra on L2 miss
    # route-detail offsets: deterministic per-(group, slice) deltas that
    # model port assignment / wire routing detail; they control how fast
    # Pearson correlation decays across the hierarchy (Fig 6).
    sm_route_sigma_cycles: float = 1.5
    gpc_route_sigma_cycles: float = 2.0
    cpc_route_sigma_cycles: float = 0.0
    measurement_jitter_cycles: float = 1.0
    # SM-to-SM (dsmem) network, H100 only (Fig 7)
    dsmem_base_cycles: float = 186.0
    dsmem_cycles_per_mm: float = 2.2

    # ---- Bandwidth model calibration (GB/s) -----------------------------
    # Fitted against Fig 9/10/12/13/14/15; see DESIGN.md section 5.
    flow_cap_gbps: float = 34.0        # per-(SM, slice) hard cap (Fig 9b)
    sm_mshr_bytes: float = 11520.0     # per-SM outstanding bytes (Little)
    flow_mshr_bytes: float = 8000.0    # per-destination outstanding bytes
    noc_buffer_bytes: float = 1200.0   # extra in-flight on partition cross
    slice_bw_gbps: float = 85.0        # per-slice ingress service (Fig 9c)
    slice_bw_sigma_gbps: float = 0.06
    tpc_out_read_gbps: float = 150.0   # TPC read speedup 2.0 (Fig 10)
    tpc_out_write_gbps: float = 65.0   # V100 write speedup 1.09 (Fig 10)
    cpc_out_read_gbps: float = 0.0     # 0 = no CPC link
    cpc_out_write_gbps: float = 0.0
    gpc_out_gbps: float = 525.0        # concentrator; GPC_l 3.5x (Fig 10)
    gpc_mp_channel_gbps: float = 120.0 # per GPC->MP channel (Fig 15c)
    mp_input_gbps: float = 700.0       # NoC->MP interface (Fig 15a)
    partition_bridge_gbps: float = 0.0 # 0 = single partition
    write_bw_ratio: float = 0.8        # per-SM write vs read efficiency
    dram_efficiency: float = 0.87      # measured/peak DRAM (Fig 9a)

    # Partition map: index -> partition id (len == num_gpcs)
    gpc_partition: tuple = ()

    def __post_init__(self):
        if self.num_gpcs <= 0 or self.tpcs_per_gpc <= 0 or self.sms_per_tpc <= 0:
            raise ConfigurationError(f"{self.name}: hierarchy sizes must be positive")
        if self.tpcs_per_cpc and self.tpcs_per_gpc % self.tpcs_per_cpc:
            raise ConfigurationError(
                f"{self.name}: tpcs_per_gpc ({self.tpcs_per_gpc}) not divisible "
                f"by tpcs_per_cpc ({self.tpcs_per_cpc})")
        if self.num_mps % self.num_partitions:
            raise ConfigurationError(
                f"{self.name}: num_mps must divide evenly across partitions")
        part = self.gpc_partition or tuple(
            g * self.num_partitions // self.num_gpcs for g in range(self.num_gpcs))
        if len(part) != self.num_gpcs:
            raise ConfigurationError(
                f"{self.name}: gpc_partition needs {self.num_gpcs} entries")
        if any(p < 0 or p >= self.num_partitions for p in part):
            raise ConfigurationError(f"{self.name}: partition id out of range")
        object.__setattr__(self, "gpc_partition", part)

    # ---- Derived counts --------------------------------------------------
    @property
    def sms_per_gpc(self) -> int:
        return self.tpcs_per_gpc * self.sms_per_tpc

    @property
    def num_tpcs(self) -> int:
        return self.num_gpcs * self.tpcs_per_gpc

    @property
    def num_sms(self) -> int:
        return self.num_tpcs * self.sms_per_tpc

    @property
    def num_slices(self) -> int:
        return self.num_mps * self.slices_per_mp

    @property
    def cpcs_per_gpc(self) -> int:
        if not self.tpcs_per_cpc:
            return 0
        return self.tpcs_per_gpc // self.tpcs_per_cpc

    @property
    def sms_per_cpc(self) -> int:
        return self.tpcs_per_cpc * self.sms_per_tpc

    @property
    def mps_per_partition(self) -> int:
        return self.num_mps // self.num_partitions

    @property
    def slices_per_partition(self) -> int:
        return self.num_slices // self.num_partitions

    def partition_of_mp(self, mp: int) -> int:
        """Partition hosting memory partition ``mp`` (split contiguously)."""
        if not 0 <= mp < self.num_mps:
            raise ConfigurationError(f"MP {mp} out of range for {self.name}")
        return mp * self.num_partitions // self.num_mps

    def table1_row(self) -> dict:
        """The paper's Table I summary row for this GPU."""
        return {
            "GPU": self.name,
            "SMs": self.num_sms,
            "GPCs": self.num_gpcs,
            "TPCs/GPC": self.tpcs_per_gpc,
            "L2 slices": self.num_slices,
            "L2 (MB)": self.l2_capacity_bytes / MIB,
            "Mem BW (GB/s)": self.mem_bandwidth_gbps,
            "Partitions": self.num_partitions,
            "Clock (GHz)": self.core_clock_hz / GIGA,
        }


# --------------------------------------------------------------------------
# Table I devices.
# --------------------------------------------------------------------------

#: Volta V100 (GV100 full die: 6 GPCs x 7 TPCs x 2 SMs = 84 SMs; 4 MPs x 8
#: L2 slices = 32 slices; 6 MB L2; 900 GB/s HBM2).  Single partition.
V100 = GPUSpec(
    name="V100",
    num_gpcs=6, tpcs_per_gpc=7,
    num_mps=4, slices_per_mp=8,
    l2_capacity_bytes=6 * MIB,
    mem_bandwidth_gbps=900.0,
    core_clock_hz=1.38e9,
    die_width_mm=33.0, die_height_mm=26.0,
    # Latency fit: Fig 1 (mean ~212, range 175-248), Fig 2 (GPC sigma 7-14).
    sm_pipeline_cycles=30.0, l2_hit_cycles=65.0,
    noc_base_oneway_cycles=39.0, cycles_per_mm=1.05,
    dram_miss_penalty_cycles=220.0,
    sm_route_sigma_cycles=0.6, gpc_route_sigma_cycles=6.0,
    # Bandwidth fit: Fig 9 (34 GB/s SM->slice, 85 GB/s GPC->slice,
    # aggregate ~2.3x DRAM), Fig 10 (TPC 2.0/1.09, GPC_l ~3.5), Fig 15.
    flow_cap_gbps=34.0, sm_mshr_bytes=11520.0, flow_mshr_bytes=8000.0,
    slice_bw_gbps=85.0, tpc_out_read_gbps=150.0, tpc_out_write_gbps=65.0,
    gpc_out_gbps=420.0, gpc_mp_channel_gbps=120.0, mp_input_gbps=700.0,
)

#: Ampere A100 (GA100 full die: 8 GPCs x 8 TPCs x 2 SMs = 128 SMs; two die
#: partitions; 8 MPs x 10 slices = 80 slices; 40 MB L2; 1555 GB/s HBM2e).
A100 = GPUSpec(
    name="A100",
    num_gpcs=8, tpcs_per_gpc=8,
    num_partitions=2,
    num_mps=8, slices_per_mp=10,
    l2_capacity_bytes=40 * MIB,
    mem_bandwidth_gbps=1555.0,
    core_clock_hz=1.41e9,
    die_width_mm=42.0, die_height_mm=26.0,
    # Latency fit: Fig 8b (near ~212, far ~400 via 2 crossings of ~47 cy
    # each way plus bridge distance).
    sm_pipeline_cycles=30.0, l2_hit_cycles=65.0,
    noc_base_oneway_cycles=43.0, cycles_per_mm=1.8,
    partition_cross_oneway_cycles=30.0,
    dram_miss_penalty_cycles=230.0,
    sm_route_sigma_cycles=0.6, gpc_route_sigma_cycles=4.0,
    # Bandwidth fit: Fig 12/13 (near 39.5, far 26 GB/s), Fig 14 (saturation
    # ~8 SMs), Fig 9a (aggregate ~3x DRAM).
    flow_cap_gbps=39.5, sm_mshr_bytes=10800.0, flow_mshr_bytes=7376.0,
    noc_buffer_bytes=0.0,
    slice_bw_gbps=170.0, slice_bw_sigma_gbps=0.4,
    tpc_out_read_gbps=160.0, tpc_out_write_gbps=130.0,
    gpc_out_gbps=1500.0, gpc_mp_channel_gbps=420.0, mp_input_gbps=1500.0,
    partition_bridge_gbps=1800.0,
)

#: Hopper H100 (GH100 full die: 8 GPCs x 9 TPCs x 2 SMs = 144 SMs; 3 CPCs
#: per GPC; two partitions with partition-local L2 caching; 8 MPs x 10
#: slices; 50 MB L2; 3350 GB/s HBM3; distributed shared memory).
H100 = GPUSpec(
    name="H100",
    num_gpcs=8, tpcs_per_gpc=9, tpcs_per_cpc=3,
    num_partitions=2,
    num_mps=8, slices_per_mp=10,
    l2_capacity_bytes=50 * MIB,
    mem_bandwidth_gbps=3350.0,
    core_clock_hz=1.78e9,
    has_dsmem=True, local_l2_policy=True,
    die_width_mm=46.0, die_height_mm=28.0,
    # Latency fit: Fig 8c (uniform hit latency via local caching), Fig 8f
    # (variable miss penalty), Fig 7 (dsmem 196-213 cy).
    sm_pipeline_cycles=32.0, l2_hit_cycles=70.0,
    noc_base_oneway_cycles=40.0, cycles_per_mm=1.5,
    partition_cross_oneway_cycles=70.0,
    dram_miss_penalty_cycles=240.0,
    sm_route_sigma_cycles=0.6, gpc_route_sigma_cycles=3.0,
    cpc_route_sigma_cycles=6.0,
    dsmem_base_cycles=185.0, dsmem_cycles_per_mm=1.1,
    # Bandwidth fit: Fig 13b (single peak ~45 GB/s), Fig 10 (GPC_l ~7.7,
    # CPC read 6.0 / write 4.6), Fig 9a (aggregate ~2.4x DRAM).
    flow_cap_gbps=45.0, sm_mshr_bytes=9800.0, flow_mshr_bytes=9000.0,
    slice_bw_gbps=200.0, slice_bw_sigma_gbps=0.5,
    tpc_out_read_gbps=170.0, tpc_out_write_gbps=140.0,
    cpc_out_read_gbps=500.0, cpc_out_write_gbps=280.0,
    gpc_out_gbps=4050.0, gpc_mp_channel_gbps=1100.0, mp_input_gbps=2200.0,
    partition_bridge_gbps=2600.0,
)


_REGISTRY = {spec.name: spec for spec in (V100, A100, H100)}


def known_specs() -> tuple:
    """Names of the built-in GPU specs (Table I devices)."""
    return tuple(_REGISTRY)


def get_spec(name: str) -> GPUSpec:
    """Look up a built-in spec by (case-insensitive) name."""
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown GPU {name!r}; known: {', '.join(_REGISTRY)}") from None
