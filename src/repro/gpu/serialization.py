"""GPUSpec <-> JSON serialization.

Lets users define custom devices in a file and point any experiment (or
the CLI's ``--spec``) at them, instead of editing Python:

    spec = load_spec("my_gpu.json")
    gpu = SimulatedGPU(spec)

The JSON is a flat object of :class:`~repro.gpu.specs.GPUSpec` field
names; omitted fields take the dataclass defaults, unknown fields are
rejected loudly.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.errors import ConfigurationError
from repro.gpu.specs import GPUSpec

_FIELDS = {f.name: f for f in dataclasses.fields(GPUSpec)}


def spec_to_dict(spec: GPUSpec) -> dict:
    """Flat JSON-ready dict of every spec field."""
    out = dataclasses.asdict(spec)
    out["gpc_partition"] = list(spec.gpc_partition)
    return out


def spec_from_dict(data: dict) -> GPUSpec:
    """Build a validated GPUSpec from a flat dict."""
    if not isinstance(data, dict):
        raise ConfigurationError("spec document must be a JSON object")
    unknown = set(data) - set(_FIELDS)
    if unknown:
        raise ConfigurationError(
            f"unknown spec fields: {', '.join(sorted(unknown))}")
    if "name" not in data:
        raise ConfigurationError("spec needs a 'name'")
    kwargs = dict(data)
    if "gpc_partition" in kwargs:
        kwargs["gpc_partition"] = tuple(kwargs["gpc_partition"])
    return GPUSpec(**kwargs)


def dump_spec(spec: GPUSpec, path) -> None:
    """Write a spec as pretty JSON."""
    Path(path).write_text(json.dumps(spec_to_dict(spec), indent=2,
                                     sort_keys=True) + "\n")


def load_spec(path) -> GPUSpec:
    """Read and validate a spec JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ConfigurationError(f"spec file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid spec JSON in {path}: {exc}") \
            from None
    return spec_from_dict(data)
