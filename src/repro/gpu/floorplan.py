"""Approximate logical floorplan (paper Figure 4) and distance queries.

Every latency observation in the paper reduces to *physical placement*:
SMs within a GPC block, GPC blocks across the die, L2 slices stacked along
the die edges next to their memory partition (MP), and — on A100/H100 — a
central bridge between the two die partitions.

The floorplan assigns a 2-D coordinate (mm) to every SM and L2 slice:

* Each partition occupies a horizontal span of the die.  Its MPs sit on the
  *outer* vertical edge (left edge for partition 0, right edge for the
  last partition; a single-partition die like V100 splits its MPs between
  both edges, matching the GV100 die photo).
* GPCs of a partition form a 2-row grid, column-major, so on V100 GPC0&1
  occupy the left column, GPC2&3 the centre, GPC4&5 the right — the
  symmetric placement the paper infers from the Pearson heatmap.
* SMs form a 2-column array inside the GPC block (one column per SM of a
  TPC); on H100 the TPC rows are grouped into CPC blocks separated by small
  gaps, which spreads SM positions and produces the CPC-granular latency
  structure of Fig 6(c)/Fig 7.

Distance queries return Manhattan wire distance; cross-partition paths are
routed through the central bridge point.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import UnknownComponentError
from repro.gpu.hierarchy import Hierarchy
from repro.gpu.specs import GPUSpec

_EDGE_MARGIN_MM = 2.0    # MP column offset from the die edge
_SLICE_COL_GAP_MM = 0.7  # half-gap between the two slice columns of an MP
_GPC_REGION_PAD_MM = 4.5  # keeps GPC grid clear of the MP columns


@dataclass(frozen=True)
class Point:
    """A position on the die, in millimetres."""
    x: float
    y: float

    def manhattan(self, other: "Point") -> float:
        return abs(self.x - other.x) + abs(self.y - other.y)


class Floorplan:
    """Physical placement for one GPU spec."""

    def __init__(self, spec: GPUSpec, hierarchy: Hierarchy | None = None):
        self.spec = spec
        self.hier = hierarchy or Hierarchy(spec)
        self._sm_pos = [self._place_sm(sm) for sm in range(spec.num_sms)]
        self._slice_pos = [self._place_slice(s) for s in range(spec.num_slices)]

    # ---- partition geometry ----------------------------------------------
    def partition_span(self, partition: int) -> tuple[float, float]:
        """Horizontal [x0, x1) span of a partition."""
        if not 0 <= partition < self.spec.num_partitions:
            raise UnknownComponentError(f"partition {partition} out of range")
        width = self.spec.die_width_mm / self.spec.num_partitions
        return partition * width, (partition + 1) * width

    @cached_property
    def bridge_point(self) -> Point:
        """Centre of the inter-partition interconnect (A100/H100)."""
        return Point(self.spec.die_width_mm / 2.0, self.spec.die_height_mm / 2.0)

    def _mp_edge_x(self, partition: int) -> float:
        """x of the MP/slice column for a partition's outer edge."""
        x0, x1 = self.partition_span(partition)
        if self.spec.num_partitions == 1:
            # single-partition dies put MPs on both edges; resolved per MP
            raise AssertionError("use _place_slice for single-partition dies")
        outer_is_left = partition < self.spec.num_partitions / 2
        return x0 + _EDGE_MARGIN_MM if outer_is_left else x1 - _EDGE_MARGIN_MM

    # ---- slice placement ---------------------------------------------------
    def _place_slice(self, slice_id: int) -> Point:
        spec = self.spec
        info = self.hier.slice_info(slice_id)
        if spec.num_partitions == 1:
            # MPs split between left and right die edges (first half left).
            left = info.mp < spec.num_mps / 2
            edge_x = _EDGE_MARGIN_MM if left else spec.die_width_mm - _EDGE_MARGIN_MM
            mp_on_edge = info.mp if left else info.mp - spec.num_mps // 2
            mps_per_edge = (spec.num_mps + 1) // 2
        else:
            edge_x = self._mp_edge_x(info.partition)
            mp_on_edge = info.mp - info.partition * spec.mps_per_partition
            mps_per_edge = spec.mps_per_partition
        mp_height = spec.die_height_mm / mps_per_edge
        y0 = mp_on_edge * mp_height
        # two slice columns, slices stacked in rows within the MP span
        col, row = divmod(info.slice_in_mp, max(1, spec.slices_per_mp // 2))
        rows = max(1, spec.slices_per_mp // 2)
        x = edge_x + (_SLICE_COL_GAP_MM if col else -_SLICE_COL_GAP_MM)
        y = y0 + (row + 0.5) * (mp_height / rows)
        return Point(x, y)

    # ---- SM placement --------------------------------------------------------
    def _gpc_grid(self, partition: int) -> tuple[list[int], int, int]:
        """GPCs of a partition plus their grid shape (rows, cols)."""
        gpcs = [g for g, p in enumerate(self.spec.gpc_partition) if p == partition]
        rows = 2 if len(gpcs) > 1 else 1
        cols = (len(gpcs) + rows - 1) // rows
        return gpcs, rows, cols

    def gpc_block(self, gpc: int) -> tuple[Point, float, float]:
        """(centre, width, height) of a GPC block."""
        spec = self.spec
        if not 0 <= gpc < spec.num_gpcs:
            raise UnknownComponentError(f"GPC {gpc} out of range")
        partition = spec.gpc_partition[gpc]
        x0, x1 = self.partition_span(partition)
        gpcs, rows, cols = self._gpc_grid(partition)
        idx = gpcs.index(gpc)
        col, row = divmod(idx, rows)           # column-major: GPC0&1 share col 0
        rx0, rx1 = x0 + _GPC_REGION_PAD_MM, x1 - _GPC_REGION_PAD_MM
        cell_w = (rx1 - rx0) / cols
        cell_h = spec.die_height_mm / rows
        centre = Point(rx0 + (col + 0.5) * cell_w, (row + 0.5) * cell_h)
        return centre, cell_w * 0.8, cell_h * 0.75

    def _place_sm(self, sm: int) -> Point:
        spec = self.spec
        info = self.hier.sm_info(sm)
        centre, width, height = self.gpc_block(info.gpc)
        # 2 columns (one per SM of the TPC), TPC rows top to bottom.
        col_x = centre.x + (width / 4.0 if info.sm_in_tpc else -width / 4.0)
        rows = spec.tpcs_per_gpc
        row_pitch = height / rows
        y = centre.y - height / 2.0 + (info.tpc_in_gpc + 0.5) * row_pitch
        if spec.tpcs_per_cpc:
            # CPC blocks are separated by gaps, spreading the SM rows.
            gap = row_pitch * 0.9
            y += (info.cpc_in_gpc - (spec.cpcs_per_gpc - 1) / 2.0) * gap
        return Point(col_x, y)

    # ---- public queries -------------------------------------------------------
    def sm_position(self, sm: int) -> Point:
        if not 0 <= sm < self.spec.num_sms:
            raise UnknownComponentError(f"SM {sm} out of range")
        return self._sm_pos[sm]

    def slice_position(self, slice_id: int) -> Point:
        if not 0 <= slice_id < self.spec.num_slices:
            raise UnknownComponentError(f"L2 slice {slice_id} out of range")
        return self._slice_pos[slice_id]

    def wire_distance(self, p: Point, q: Point) -> float:
        """Anisotropic Manhattan distance: vertical runs are cheaper wires.

        The NoC spine runs horizontally between the GPC rows; vertical
        segments (within a GPC column or an edge slice stack) are short
        local wiring, weighted by ``spec.wire_y_factor``.
        """
        return abs(p.x - q.x) + self.spec.wire_y_factor * abs(p.y - q.y)

    def sm_slice_distance_mm(self, sm: int, slice_id: int) -> float:
        """Wire distance of the SM->slice NoC path (via bridge if crossing)."""
        p, q = self.sm_position(sm), self.slice_position(slice_id)
        if self.hier.crosses_partition(sm, slice_id):
            b = self.bridge_point
            return self.wire_distance(p, b) + self.wire_distance(b, q)
        return self.wire_distance(p, q)

    def sm_sm_distance_mm(self, a: int, b: int) -> float:
        """Wire distance of the SM-to-SM (dsmem) path within a GPC.

        The SM-to-SM network hub sits at the GPC corner next to CPC0
        (paper Fig 7: within-CPC0 traffic is fastest, within-CPC2 slowest,
        i.e. even intra-CPC traffic traverses the hub).
        """
        ia, ib = self.hier.sm_info(a), self.hier.sm_info(b)
        pa, pb = self.sm_position(a), self.sm_position(b)
        if ia.gpc != ib.gpc:
            return self.wire_distance(pa, pb)  # inter-GPC dsmem: paper N/A
        hub = self.dsmem_hub(ia.gpc)
        return pa.manhattan(hub) + hub.manhattan(pb)

    def dsmem_hub(self, gpc: int) -> Point:
        """SM-to-SM network hub of a GPC (at the CPC0 end of the block)."""
        centre, _width, height = self.gpc_block(gpc)
        return Point(centre.x, centre.y - height / 2.0)

    def render(self) -> str:
        """Coarse text rendering of the floorplan (Fig 4 analogue)."""
        spec = self.spec
        cols, rows = 66, 24
        sx = cols / spec.die_width_mm
        sy = rows / spec.die_height_mm
        grid = [[" "] * cols for _ in range(rows)]

        def put(p: Point, ch: str):
            c = min(cols - 1, max(0, int(p.x * sx)))
            r = min(rows - 1, max(0, int(p.y * sy)))
            grid[r][c] = ch

        for s in range(spec.num_slices):
            put(self.slice_position(s), str(self.hier.slice_info(s).mp % 10))
        for sm in range(spec.num_sms):
            put(self.sm_position(sm), chr(ord("A") + self.hier.sm_info(sm).gpc))
        border = "+" + "-" * cols + "+"
        body = "\n".join("|" + "".join(row) + "|" for row in grid)
        legend = ("letters = SMs (A=GPC0 ...), digits = L2 slices (digit = MP id)")
        return f"{spec.name} floorplan\n{border}\n{body}\n{border}\n{legend}"
