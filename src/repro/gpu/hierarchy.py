"""SM / TPC / CPC / GPC / partition hierarchy and id arithmetic.

The paper identifies components by flat ids (``smid``, profiler L2 slice id).
This module provides the bidirectional mapping between flat ids and positions
in the hierarchy tree, for both the compute side (SMs) and the memory side
(MPs and L2 slices).

SM ids are enumerated GPC-major: ``sm = gpc * sms_per_gpc + tpc_in_gpc *
sms_per_tpc + sm_in_tpc``.  Slice ids are MP-major.  (Real ``%smid``
enumeration differs per chip; only *distinctness* matters for the paper's
methodology, as Section II-C notes.)
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import UnknownComponentError
from repro.gpu.specs import GPUSpec


@dataclass(frozen=True)
class SMInfo:
    """Position of one SM in the hierarchy."""
    sm: int
    tpc: int            # global TPC id
    tpc_in_gpc: int
    cpc: int            # global CPC id, -1 if the GPU has no CPC level
    cpc_in_gpc: int     # -1 if no CPC level
    gpc: int
    partition: int
    sm_in_tpc: int
    sms_per_tpc: int = 2

    @property
    def sm_in_gpc(self) -> int:
        return self.tpc_in_gpc * self.sms_per_tpc + self.sm_in_tpc


@dataclass(frozen=True)
class SliceInfo:
    """Position of one L2 slice in the memory organisation."""
    slice_id: int
    mp: int
    slice_in_mp: int
    partition: int


class Hierarchy:
    """Id arithmetic for one :class:`GPUSpec`."""

    def __init__(self, spec: GPUSpec):
        self.spec = spec

    # ---- compute side ----------------------------------------------------
    def sm_info(self, sm: int) -> SMInfo:
        spec = self.spec
        if not 0 <= sm < spec.num_sms:
            raise UnknownComponentError(f"SM {sm} out of range for {spec.name}")
        gpc, rem = divmod(sm, spec.sms_per_gpc)
        tpc_in_gpc, sm_in_tpc = divmod(rem, spec.sms_per_tpc)
        if spec.tpcs_per_cpc:
            cpc_in_gpc = tpc_in_gpc // spec.tpcs_per_cpc
            cpc = gpc * spec.cpcs_per_gpc + cpc_in_gpc
        else:
            cpc_in_gpc = cpc = -1
        return SMInfo(
            sm=sm,
            tpc=gpc * spec.tpcs_per_gpc + tpc_in_gpc,
            tpc_in_gpc=tpc_in_gpc,
            cpc=cpc, cpc_in_gpc=cpc_in_gpc,
            gpc=gpc,
            partition=spec.gpc_partition[gpc],
            sm_in_tpc=sm_in_tpc,
            sms_per_tpc=spec.sms_per_tpc,
        )

    def sm_id(self, gpc: int, tpc_in_gpc: int, sm_in_tpc: int = 0) -> int:
        spec = self.spec
        if not 0 <= gpc < spec.num_gpcs:
            raise UnknownComponentError(f"GPC {gpc} out of range for {spec.name}")
        if not 0 <= tpc_in_gpc < spec.tpcs_per_gpc:
            raise UnknownComponentError(f"TPC {tpc_in_gpc} out of range in GPC")
        if not 0 <= sm_in_tpc < spec.sms_per_tpc:
            raise UnknownComponentError(f"SM-in-TPC {sm_in_tpc} out of range")
        return (gpc * spec.sms_per_gpc + tpc_in_gpc * spec.sms_per_tpc
                + sm_in_tpc)

    def sms_in_gpc(self, gpc: int) -> list[int]:
        if not 0 <= gpc < self.spec.num_gpcs:
            raise UnknownComponentError(f"GPC {gpc} out of range")
        base = gpc * self.spec.sms_per_gpc
        return list(range(base, base + self.spec.sms_per_gpc))

    def sms_in_tpc(self, tpc: int) -> list[int]:
        if not 0 <= tpc < self.spec.num_tpcs:
            raise UnknownComponentError(f"TPC {tpc} out of range")
        base = tpc * self.spec.sms_per_tpc
        return list(range(base, base + self.spec.sms_per_tpc))

    def sms_in_cpc(self, gpc: int, cpc_in_gpc: int) -> list[int]:
        spec = self.spec
        if not spec.tpcs_per_cpc:
            raise UnknownComponentError(f"{spec.name} has no CPC hierarchy")
        if not 0 <= cpc_in_gpc < spec.cpcs_per_gpc:
            raise UnknownComponentError(f"CPC {cpc_in_gpc} out of range in GPC")
        first_tpc = cpc_in_gpc * spec.tpcs_per_cpc
        return [self.sm_id(gpc, first_tpc + t, s)
                for t in range(spec.tpcs_per_cpc)
                for s in range(spec.sms_per_tpc)]

    def sms_in_partition(self, partition: int) -> list[int]:
        return [sm for gpc, p in enumerate(self.spec.gpc_partition) if p == partition
                for sm in self.sms_in_gpc(gpc)]

    @cached_property
    def all_sms(self) -> list[int]:
        return list(range(self.spec.num_sms))

    # ---- memory side -----------------------------------------------------
    def slice_info(self, slice_id: int) -> SliceInfo:
        spec = self.spec
        if not 0 <= slice_id < spec.num_slices:
            raise UnknownComponentError(
                f"L2 slice {slice_id} out of range for {spec.name}")
        mp, slice_in_mp = divmod(slice_id, spec.slices_per_mp)
        return SliceInfo(slice_id=slice_id, mp=mp, slice_in_mp=slice_in_mp,
                         partition=spec.partition_of_mp(mp))

    def slice_id(self, mp: int, slice_in_mp: int) -> int:
        spec = self.spec
        if not 0 <= mp < spec.num_mps:
            raise UnknownComponentError(f"MP {mp} out of range for {spec.name}")
        if not 0 <= slice_in_mp < spec.slices_per_mp:
            raise UnknownComponentError(f"slice {slice_in_mp} out of range in MP")
        return mp * spec.slices_per_mp + slice_in_mp

    def slices_in_mp(self, mp: int) -> list[int]:
        if not 0 <= mp < self.spec.num_mps:
            raise UnknownComponentError(f"MP {mp} out of range")
        base = mp * self.spec.slices_per_mp
        return list(range(base, base + self.spec.slices_per_mp))

    def slices_in_partition(self, partition: int) -> list[int]:
        return [s for mp in range(self.spec.num_mps)
                if self.spec.partition_of_mp(mp) == partition
                for s in self.slices_in_mp(mp)]

    @cached_property
    def all_slices(self) -> list[int]:
        return list(range(self.spec.num_slices))

    # ---- cross-partition helpers ------------------------------------------
    def crosses_partition(self, sm: int, slice_id: int) -> bool:
        """True when an SM->slice access traverses the partition bridge."""
        return (self.sm_info(sm).partition
                != self.slice_info(slice_id).partition)

    def local_alias_slice(self, sm: int, slice_id: int) -> int:
        """The partition-local slice that caches ``slice_id``'s data (H100).

        H100's L2 "caches data for memory accesses from SMs in GPCs directly
        connected to the partition" (paper Section III-C), so a hit is
        serviced by a slice in the SM's own partition at the same offset.
        """
        spec = self.spec
        info = self.slice_info(slice_id)
        sm_part = self.sm_info(sm).partition
        if info.partition == sm_part:
            return slice_id
        offset = slice_id - sm_part_first(spec, info.partition)
        return sm_part_first(spec, sm_part) + offset


def sm_part_first(spec: GPUSpec, partition: int) -> int:
    """First slice id belonging to ``partition`` (contiguous MP split)."""
    return partition * spec.slices_per_partition
