"""Simulated GPU hardware models (Table I devices and custom configs)."""

from repro.gpu.specs import GPUSpec, V100, A100, H100, get_spec, known_specs
from repro.gpu.hierarchy import Hierarchy, SMInfo, SliceInfo
from repro.gpu.floorplan import Floorplan, Point
from repro.gpu.device import SimulatedGPU
from repro.gpu.serialization import dump_spec, load_spec

__all__ = [
    "GPUSpec", "V100", "A100", "H100", "get_spec", "known_specs",
    "Hierarchy", "SMInfo", "SliceInfo", "Floorplan", "Point", "SimulatedGPU",
    "dump_spec", "load_spec",
]
