"""The simulated GPU device: one object wiring every substrate together.

:class:`SimulatedGPU` is the handle the rest of the package (runtime,
microbenchmarks, side-channel harnesses) works against.  It owns:

* the spec (Table I parameters + calibration),
* hierarchy and floorplan,
* the NoC latency model and bandwidth topology,
* the memory subsystem (hash, sliced L2, DRAM).

All randomness inside a device derives from its ``seed``, so two devices
built with the same spec and seed behave identically.
"""

from __future__ import annotations

from functools import cached_property

from repro.gpu.floorplan import Floorplan
from repro.gpu.hierarchy import Hierarchy
from repro.gpu.specs import GPUSpec, get_spec


class SimulatedGPU:
    """A software model of one GPU (paper Table I device)."""

    def __init__(self, spec: GPUSpec | str, seed: int = 0):
        self.spec = get_spec(spec) if isinstance(spec, str) else spec
        self.seed = seed
        self.hier = Hierarchy(self.spec)
        self.floorplan = Floorplan(self.spec, self.hier)

    @cached_property
    def latency(self):
        from repro.noc.latency import LatencyModel
        return LatencyModel(self.spec, self.hier, self.floorplan, self.seed)

    @cached_property
    def topology(self):
        from repro.noc.topology_graph import TopologyGraph
        return TopologyGraph(self.latency, self.seed)

    @cached_property
    def memory(self):
        from repro.memory.subsystem import MemorySubsystem
        return MemorySubsystem(self.latency)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_sms(self) -> int:
        return self.spec.num_sms

    @property
    def num_slices(self) -> int:
        return self.spec.num_slices

    def fresh_memory(self):
        """A new, cold memory subsystem (drops all cached L2 state)."""
        from repro.memory.subsystem import MemorySubsystem
        self.__dict__.pop("memory", None)
        return self.memory

    def __repr__(self) -> str:
        return (f"SimulatedGPU({self.spec.name}, sms={self.num_sms}, "
                f"slices={self.num_slices}, seed={self.seed})")
