"""Little's-law analysis of latency-limited bandwidth (paper Fig 14).

The paper explains the A100's lower far-partition bandwidth with Little's
law: the same outstanding-request budget divided by a longer round-trip
time yields less throughput, until enough SMs stack their budgets to
saturate the slice.  These helpers make that argument quantitative and are
used both by the Fig 14 bench and by tests that cross-check the flow
solver against first principles.
"""

from __future__ import annotations

import math

from repro import units
from repro.errors import ReproError


def achievable_bandwidth_gbps(outstanding_bytes: float,
                              round_trip_cycles: float,
                              clock_hz: float) -> float:
    """Single-requester bandwidth at a given in-flight byte budget."""
    if outstanding_bytes < 0:
        raise ReproError("outstanding_bytes must be non-negative")
    return units.littles_law_bandwidth(outstanding_bytes, round_trip_cycles,
                                       clock_hz)


def required_outstanding_bytes(target_gbps: float, round_trip_cycles: float,
                               clock_hz: float) -> float:
    """In-flight bytes needed to sustain ``target_gbps``."""
    if target_gbps < 0:
        raise ReproError("target_gbps must be non-negative")
    return units.bytes_in_flight(target_gbps, round_trip_cycles, clock_hz)


def sms_to_saturate(slice_bw_gbps: float, per_sm_gbps: float) -> int:
    """SMs needed before a slice's ingress bandwidth, not latency, binds.

    This is the paper's "minimum of 4 SMs" / "saturates at ~8 SMs"
    arithmetic (Observations 8 and 10).
    """
    if slice_bw_gbps <= 0 or per_sm_gbps <= 0:
        raise ReproError("bandwidths must be positive")
    return max(1, math.ceil(slice_bw_gbps / per_sm_gbps))
