"""Lint configuration: per-rule module scopes from ``pyproject.toml``.

Rules used to hardcode the packages they police (``SIMULATION_PACKAGES``
in the determinism rule, ``ASYNC_PACKAGES`` in async-safety), which
meant editing rule source every time a subsystem landed.  The scopes now
live in a ``[tool.repro.lint.scopes.<RULE>]`` section::

    [tool.repro.lint.scopes.REP001]
    include = ["repro.noc", "repro.gpu", "repro.traffic"]
    exclude = ["repro.rng"]

Patterns are dotted-module globs: a pattern without wildcards matches
the module itself and everything under it (``repro.noc`` covers
``repro.noc.mesh.router``); ``fnmatch`` wildcards are honoured
(``repro.*.fastpath``).  An absent/empty ``include`` means *every*
module; ``exclude`` always wins over ``include``.

:data:`DEFAULT_SCOPES` carries the shipped defaults so the linter works
on trees without a ``pyproject.toml``; a pyproject section *replaces*
that rule's default wholesale (no merging — what you read in the file
is what runs).  The loaded config serializes to a stable digest that is
folded into the incremental cache key, so editing scopes invalidates
exactly the cached per-file reports they could change.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path

try:
    import tomllib
except ImportError:                      # Python 3.10: stdlib tomllib is 3.11+
    tomllib = None

__all__ = ["LintConfig", "RuleScope", "DEFAULT_SCOPES", "load_config"]

#: Shipped defaults, used when pyproject.toml has no [tool.repro.lint]
#: section (and mirrored there for this repo).
DEFAULT_SCOPES: dict[str, dict] = {
    # bit-reproducible simulation packages (REP001 determinism and
    # REP006 rng-stream discipline police the same surface)
    "REP001": {
        "include": ["repro.noc", "repro.gpu", "repro.memory",
                    "repro.core", "repro.runtime", "repro.sidechannel",
                    "repro.workloads", "repro.traffic"],
        "exclude": ["repro.rng"],
    },
    "REP006": {
        "include": ["repro.noc", "repro.gpu", "repro.memory",
                    "repro.core", "repro.runtime", "repro.sidechannel",
                    "repro.workloads", "repro.traffic", "repro.exec",
                    "repro.serve"],
        "exclude": ["repro.rng"],
    },
    # event-loop packages (REP002 syntactic + REP007 flow-sensitive)
    "REP002": {"include": ["repro.serve", "repro.traffic"],
               "exclude": []},
    "REP007": {"include": ["repro.serve", "repro.traffic"],
               "exclude": []},
    # unit discipline: everywhere except the unit table itself and the
    # linter's own fixtures/engine
    "REP003": {"include": [],
               "exclude": ["repro.units", "repro.analysis.lint"]},
    # resource lifecycle: every repro package — notably the shared
    # segment core (repro.ipc), both transports riding it (repro.serve
    # .shm, repro.exec.shm) and the cache's lock descriptors
    "REP008": {"include": ["repro"], "exclude": []},
}


def module_matches(module: str, pattern: str) -> bool:
    """Dotted-module glob match (prefix semantics for literal patterns)."""
    if not pattern:
        return False
    if fnmatchcase(module, pattern):
        return True
    if any(ch in pattern for ch in "*?["):
        return False
    return module == pattern or module.startswith(pattern + ".")


@dataclass(frozen=True)
class RuleScope:
    """include/exclude module globs for one rule."""

    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()

    def covers(self, module: str) -> bool:
        if any(module_matches(module, pat) for pat in self.exclude):
            return False
        if not self.include:
            return True
        return any(module_matches(module, pat) for pat in self.include)


@dataclass(frozen=True)
class LintConfig:
    """Per-rule scopes (plus room for future lint settings)."""

    scopes: tuple[tuple[str, RuleScope], ...] = ()
    source: str = "defaults"             # where the scopes came from

    def _scope(self, rule_id: str) -> RuleScope | None:
        for known, scope in self.scopes:
            if known == rule_id:
                return scope
        return None

    def in_scope(self, rule_id: str, module: str) -> bool:
        """Is ``module`` policed by ``rule_id``?  Unconfigured rules run
        everywhere."""
        scope = self._scope(rule_id)
        return True if scope is None else scope.covers(module)

    # -------------------------------------------------------- (de)serialize
    def to_dict(self) -> dict:
        return {"source": self.source,
                "scopes": {rule: {"include": list(scope.include),
                                  "exclude": list(scope.exclude)}
                           for rule, scope in self.scopes}}

    @classmethod
    def from_dict(cls, doc: dict) -> "LintConfig":
        scopes = tuple(sorted(
            (rule, RuleScope(include=tuple(entry.get("include", ())),
                             exclude=tuple(entry.get("exclude", ()))))
            for rule, entry in doc.get("scopes", {}).items()))
        return cls(scopes=scopes, source=doc.get("source", "defaults"))

    def digest(self) -> str:
        """Stable hash folded into incremental cache keys."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _default_config() -> LintConfig:
    return LintConfig.from_dict({"scopes": DEFAULT_SCOPES,
                                 "source": "defaults"})


def load_config(root: str | Path | None = None) -> LintConfig:
    """Config from ``<root>/pyproject.toml``, defaults when absent.

    Per-rule override is wholesale: a ``[tool.repro.lint.scopes.REPnnn]``
    table replaces that rule's default scope; rules without a table keep
    theirs.
    """
    if root is None:
        return _default_config()
    pyproject = Path(root) / "pyproject.toml"
    if tomllib is None or not pyproject.is_file():
        return _default_config()
    try:
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError):
        return _default_config()
    section = data.get("tool", {}).get("repro", {}).get("lint", {})
    configured = section.get("scopes")
    if not isinstance(configured, dict):
        return _default_config()
    merged = dict(DEFAULT_SCOPES)
    for rule, entry in configured.items():
        if not isinstance(entry, dict):
            continue
        merged[rule.upper()] = {
            "include": [str(p) for p in entry.get("include", [])],
            "exclude": [str(p) for p in entry.get("exclude", [])],
        }
    return LintConfig.from_dict({"scopes": merged,
                                 "source": str(pyproject)})
