"""The lint engine: per-file analysis, fan-out, cache, cross-file merge.

One analysis pass per file produces a serializable *file report*: the
raw findings, the ``# repro: noqa`` map, and every cross-file fact the
rules collected.  That shape is what enables the two performance
features:

* **parallel fan-out** (``jobs=N``): file reports are computed in
  worker processes and merged in the parent;
* **incremental cache** (``cache_dir=``): a file report is memoized on
  disk keyed by the file's content hash, the enabled rule set,
  :data:`RULESET_VERSION`, and the config digest — a warm run re-parses
  nothing and recomputes only edited files (the ResultCache idiom from
  :mod:`repro.exec.cache`, which also supplies the store).

Cross-file work (REP004 parity, REP009 fingerprint completeness) always
runs in the parent over the *merged* facts, so cached and fresh files
compose exactly.  Syntactic rules see one AST walk; ``mode = "flow"``
rules additionally get every function's CFG
(:mod:`repro.analysis.flow`), built once and shared.  Findings then
flow through noqa suppression (with unused-noqa reported as REP010),
fingerprinting, and baseline filtering.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.lint.config import LintConfig, load_config
from repro.analysis.lint.context import FileContext
from repro.analysis.lint.findings import Finding, assign_fingerprints
from repro.analysis.lint.rules import Rule, build_rules

#: Bump when any rule's behaviour changes: invalidates every cached
#: per-file report at once (the lint analogue of CACHE_VERSION).
RULESET_VERSION = 2

#: the suppression directive: bare, or rule-listed as "noqa[REP001,REP003]"
_NOQA = re.compile(r"#\s*repro:\s*noqa"
                   r"(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")

_SKIP_DIRS = {"__pycache__", ".git", ".hg", "build", "dist",
              ".pytest_cache", ".venv", "node_modules"}


def iter_python_files(paths: list[str | Path],
                      root: Path) -> list[Path]:
    """All ``.py`` files under ``paths`` (deduplicated, sorted)."""
    found: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if not path.is_absolute():
            path = root / path
        if path.is_file() and path.suffix == ".py":
            found.add(path.resolve())
        elif path.is_dir():
            for sub in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    found.add(sub.resolve())
    return sorted(found)


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module guess: ``src/repro/noc/latency.py`` -> ``repro.noc
    .latency``; files outside a package root keep their stem."""
    try:
        relative = path.resolve().relative_to(root.resolve())
    except ValueError:
        return path.stem
    parts = list(relative.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def noqa_map(source_lines: list[str]) -> dict[int, set[str] | None]:
    """line (1-based) -> suppressed rule ids, or None for 'all rules'."""
    out: dict[int, set[str] | None] = {}
    for number, text in enumerate(source_lines, start=1):
        match = _NOQA.search(text)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            out[number] = None
        else:
            out[number] = {r.strip().upper() for r in rules.split(",")
                           if r.strip()}
    return out


def _comment_lines(source: str) -> set[int] | None:
    """Lines carrying a real ``#`` comment token, or None if the file
    does not tokenize.

    The noqa regex alone would honour (and REP010 would flag) mere
    *mentions* of ``# repro: noqa`` inside docstrings and message
    strings — this linter's own sources are full of those.
    """
    import io
    import tokenize
    lines: set[int] = set()
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                lines.add(token.start[0])
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        return None
    return lines


class _Dispatcher(ast.NodeVisitor):
    """Walks once, keeps scope stacks current, dispatches to rules."""

    def __init__(self, ctx: FileContext, interests: dict[str, list[Rule]]):
        self.ctx = ctx
        self.interests = interests

    def visit(self, node: ast.AST) -> None:
        ctx = self.ctx
        for rule in self.interests.get(type(node).__name__, ()):
            rule.check(node, ctx)
        is_function = isinstance(node, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))
        is_class = isinstance(node, ast.ClassDef)
        if is_function:
            ctx.function_stack.append(node)
        elif is_class:
            ctx.class_stack.append(node)
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node
            self.visit(child)
        if is_function:
            ctx.function_stack.pop()
        elif is_class:
            ctx.class_stack.pop()


# --------------------------------------------------------------------------
# per-file analysis (runs in-process or in a pool worker)
# --------------------------------------------------------------------------

def analyze_source(*, relative: str, module: str, source: str,
                   select: tuple[str, ...] | None,
                   config: LintConfig | None) -> dict:
    """One file's full analysis as a JSON-serializable report.

    ``{"findings": [...], "noqa": {...}, "facts": {...},
    "parse_errors": int}`` — exactly what the incremental cache stores
    and the pool workers return.
    """
    report: dict = {"findings": [], "noqa": {}, "facts": {},
                    "parse_errors": 0}
    try:
        tree = ast.parse(source, filename=relative)
    except SyntaxError as exc:
        report["parse_errors"] = 1
        report["findings"].append(Finding(
            rule="REP000", path=relative, line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}").to_json())
        return report
    ctx = FileContext(path=relative, module=module, tree=tree,
                      source=source, config=config)
    mapping = noqa_map(ctx.source_lines)
    comments = _comment_lines(source)
    if comments is not None:
        mapping = {line: rules for line, rules in mapping.items()
                   if line in comments}
    report["noqa"] = {
        str(line): (None if rules is None else sorted(rules))
        for line, rules in mapping.items()}

    rules = build_rules(select)
    interests: dict[str, list[Rule]] = {}
    for rule in rules:
        for interest in rule.interests:
            interests.setdefault(interest, []).append(rule)
    _Dispatcher(ctx, interests).visit(tree)

    flow_rules = [rule for rule in rules if rule.mode == "flow"]
    if flow_rules:
        from repro.analysis.flow import iter_functions
        for func in iter_functions(tree):
            cfg = None
            for rule in flow_rules:
                if not ctx.in_rule_scope(rule.id):
                    continue
                if cfg is None:
                    cfg = ctx.cfg_for(func)
                rule.check_function(func, cfg, ctx)

    report["findings"] = [f.to_json() for f in ctx.findings]
    report["facts"] = ctx.facts
    return report


def _analyze_task(task: tuple) -> tuple[str, dict]:
    """Pool-worker entry: read + analyze one file."""
    path_str, relative, module, select, config = task
    source = Path(path_str).read_text(encoding="utf-8", errors="replace")
    return relative, analyze_source(relative=relative, module=module,
                                    source=source, select=select,
                                    config=config)


def _report_key(source: str, enabled: tuple[str, ...],
                config: LintConfig | None) -> str:
    """Incremental-cache key: content x rule set x engine x config."""
    text = "|".join((
        hashlib.sha256(source.encode()).hexdigest(),
        f"ruleset={RULESET_VERSION}",
        ",".join(enabled),
        config.digest() if config is not None else "noconfig",
    ))
    return "lint-" + hashlib.sha256(text.encode()).hexdigest()


# --------------------------------------------------------------------------
# results
# --------------------------------------------------------------------------

@dataclass
class LintResult:
    """Outcome of one lint run (post-suppression, post-baseline)."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed_noqa: int = 0
    suppressed_baseline: int = 0
    parse_errors: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: every fingerprint seen before baseline filtering — what
    #: ``--prune-baseline`` diffs the baseline file against
    live_fingerprints: frozenset[str] = frozenset()

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


# --------------------------------------------------------------------------
# the run
# --------------------------------------------------------------------------

def run_lint(paths: list[str | Path], *, root: str | Path | None = None,
             select: tuple[str, ...] | None = None,
             baseline: set[str] | frozenset[str] = frozenset(),
             jobs: int = 1, cache_dir: str | Path | None = None,
             config: LintConfig | None = None) -> LintResult:
    """Lint ``paths`` and return the filtered result.

    ``root`` anchors repo-relative paths in findings (default: cwd) and
    is where ``pyproject.toml`` scopes are read from unless an explicit
    ``config`` is given.  ``baseline`` is a set of fingerprints to keep
    quiet.  ``jobs > 1`` fans per-file analysis out to worker
    processes; ``cache_dir`` memoizes per-file reports across runs.
    """
    root = Path(root) if root is not None else Path.cwd()
    if config is None:
        config = load_config(root)
    rules = build_rules(select)          # validates select early
    enabled = tuple(sorted(rule.id for rule in rules))
    select_t = tuple(select) if select else None

    cache = None
    if cache_dir is not None:
        from repro.exec.cache import ResultCache
        cache = ResultCache(cache_dir)

    result = LintResult()
    sources: dict[str, str] = {}
    reports: dict[str, dict] = {}
    pending: list[tuple] = []            # cache misses to analyze
    keys: dict[str, str] = {}

    for path in iter_python_files(paths, root):
        result.files_scanned += 1
        try:
            relative = path.relative_to(root.resolve()).as_posix()
        except ValueError:
            relative = path.as_posix()
        source = path.read_text(encoding="utf-8", errors="replace")
        sources[relative] = source
        if cache is not None:
            key = keys[relative] = _report_key(source, enabled, config)
            hit = cache.get(key)
            if hit is not None:
                result.cache_hits += 1
                reports[relative] = hit
                continue
            result.cache_misses += 1
        pending.append((str(path), relative,
                        module_name_for(path, root), select_t, config))

    if jobs > 1 and len(pending) > 1:
        from concurrent.futures import ProcessPoolExecutor
        chunk = max(1, len(pending) // (jobs * 4))
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            computed = list(pool.map(_analyze_task, pending,
                                     chunksize=chunk))
    else:
        computed = [_analyze_task(task) for task in pending]
    for relative, report in computed:
        reports[relative] = report
        if cache is not None:
            cache.put(keys[relative], report)

    # ------------------------------------------------------------- merge
    raw: list[Finding] = []
    suppressions: dict[str, dict[int, set[str] | None]] = {}
    merged_facts: dict[str, list[dict]] = {}
    for relative in sorted(reports):
        report = reports[relative]
        result.parse_errors += report.get("parse_errors", 0)
        raw.extend(Finding.from_json(doc) for doc in report["findings"])
        suppressions[relative] = {
            int(line): (None if rules_ is None else set(rules_))
            for line, rules_ in report.get("noqa", {}).items()}
        for rule_id, facts in report.get("facts", {}).items():
            merged_facts.setdefault(rule_id, []).extend(facts)

    def report_finding(rule_id, path, line, col, message, snippet=""):
        raw.append(Finding(rule=rule_id, path=path, line=line, col=col,
                           message=message, snippet=snippet))

    for rule in rules:
        rule.finalize(merged_facts.get(rule.id, []), report_finding)

    # ------------------------------------------- suppression + unused-noqa
    used: dict[tuple[str, int], int] = {}
    survivors = []
    for finding in raw:
        allowed = suppressions.get(finding.path, {}).get(finding.line, ...)
        if allowed is None or (allowed is not ... and
                               finding.rule in allowed):
            result.suppressed_noqa += 1
            used[(finding.path, finding.line)] = \
                used.get((finding.path, finding.line), 0) + 1
            continue
        survivors.append(finding)

    enabled_set = set(enabled)
    for relative in sorted(suppressions):
        lines = sources.get(relative, "").splitlines()
        for line, allowed in sorted(suppressions[relative].items()):
            if used.get((relative, line)):
                continue
            if allowed is None:
                if select_t is not None:
                    continue            # partial run: can't judge a bare noqa
                what = "suppresses no finding"
            else:
                if not allowed <= enabled_set:
                    continue            # a listed rule didn't run
                what = (f"suppresses no {'/'.join(sorted(allowed))} "
                        "finding")
            snippet = lines[line - 1].strip() if \
                1 <= line <= len(lines) else ""
            survivors.append(Finding(
                rule="REP010", path=relative, line=line, col=0,
                message=f"unused `# repro: noqa` comment: {what}; "
                        "remove it so real suppressions stay auditable",
                snippet=snippet, level="note"))

    # ------------------------------------------- fingerprints + baseline
    fingerprinted = assign_fingerprints(survivors)
    result.live_fingerprints = frozenset(
        finding.fingerprint for finding in fingerprinted)
    for finding in fingerprinted:
        if finding.fingerprint in baseline:
            result.suppressed_baseline += 1
        else:
            result.findings.append(finding)
    return result
