"""The single-pass lint engine.

One AST walk per file: a dispatching visitor maintains the function /
class scope stacks on the :class:`FileContext` and hands every node to
each enabled rule that declared interest in its type.  After all files,
cross-file rules finalize (golden-model parity needs both sides of a
watched pair).  Findings then flow through ``# repro: noqa[...]``
suppression, fingerprinting, and baseline filtering.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.findings import Finding, assign_fingerprints
from repro.analysis.lint.rules import Rule, build_rules

#: ``# repro: noqa`` or ``# repro: noqa[REP001,REP003]``
_NOQA = re.compile(r"#\s*repro:\s*noqa"
                   r"(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")

_SKIP_DIRS = {"__pycache__", ".git", ".hg", "build", "dist",
              ".pytest_cache", ".venv", "node_modules"}


def iter_python_files(paths: list[str | Path],
                      root: Path) -> list[Path]:
    """All ``.py`` files under ``paths`` (deduplicated, sorted)."""
    found: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if not path.is_absolute():
            path = root / path
        if path.is_file() and path.suffix == ".py":
            found.add(path.resolve())
        elif path.is_dir():
            for sub in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    found.add(sub.resolve())
    return sorted(found)


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module guess: ``src/repro/noc/latency.py`` -> ``repro.noc
    .latency``; files outside a package root keep their stem."""
    try:
        relative = path.resolve().relative_to(root.resolve())
    except ValueError:
        return path.stem
    parts = list(relative.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def noqa_map(source_lines: list[str]) -> dict[int, set[str] | None]:
    """line (1-based) -> suppressed rule ids, or None for 'all rules'."""
    out: dict[int, set[str] | None] = {}
    for number, text in enumerate(source_lines, start=1):
        match = _NOQA.search(text)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            out[number] = None
        else:
            out[number] = {r.strip().upper() for r in rules.split(",")
                           if r.strip()}
    return out


class _Dispatcher(ast.NodeVisitor):
    """Walks once, keeps scope stacks current, dispatches to rules."""

    def __init__(self, ctx: FileContext, interests: dict[str, list[Rule]]):
        self.ctx = ctx
        self.interests = interests

    def visit(self, node: ast.AST) -> None:
        ctx = self.ctx
        for rule in self.interests.get(type(node).__name__, ()):
            rule.check(node, ctx)
        is_function = isinstance(node, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))
        is_class = isinstance(node, ast.ClassDef)
        if is_function:
            ctx.function_stack.append(node)
        elif is_class:
            ctx.class_stack.append(node)
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node
            self.visit(child)
        if is_function:
            ctx.function_stack.pop()
        elif is_class:
            ctx.class_stack.pop()


@dataclass
class LintResult:
    """Outcome of one lint run (post-suppression, post-baseline)."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed_noqa: int = 0
    suppressed_baseline: int = 0
    parse_errors: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def run_lint(paths: list[str | Path], *, root: str | Path | None = None,
             select: tuple[str, ...] | None = None,
             baseline: set[str] | frozenset[str] = frozenset(),
             ) -> LintResult:
    """Lint ``paths`` and return the filtered result.

    ``root`` anchors repo-relative paths in findings (default: cwd).
    ``baseline`` is a set of fingerprints to keep quiet (see
    :mod:`repro.analysis.lint.baseline`).
    """
    root = Path(root) if root is not None else Path.cwd()
    rules = build_rules(select)
    interests: dict[str, list[Rule]] = {}
    for rule in rules:
        for interest in rule.interests:
            interests.setdefault(interest, []).append(rule)

    result = LintResult()
    raw: list[Finding] = []
    suppressions: dict[str, dict[int, set[str] | None]] = {}

    for path in iter_python_files(paths, root):
        result.files_scanned += 1
        try:
            relative = path.relative_to(root.resolve()).as_posix()
        except ValueError:
            relative = path.as_posix()
        source = path.read_text(encoding="utf-8", errors="replace")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            result.parse_errors += 1
            raw.append(Finding(rule="REP000", path=relative,
                               line=exc.lineno or 1,
                               col=(exc.offset or 1) - 1,
                               message=f"syntax error: {exc.msg}"))
            continue
        ctx = FileContext(path=relative,
                          module=module_name_for(path, root),
                          tree=tree, source=source)
        suppressions[relative] = noqa_map(ctx.source_lines)
        _Dispatcher(ctx, interests).visit(tree)
        raw.extend(ctx.findings)

    def report(rule_id, path, line, col, message, snippet=""):
        raw.append(Finding(rule=rule_id, path=path, line=line, col=col,
                           message=message, snippet=snippet))

    for rule in rules:
        rule.finalize(report)

    survivors = []
    for finding in raw:
        allowed = suppressions.get(finding.path, {}).get(finding.line, ...)
        if allowed is None or (allowed is not ... and
                               finding.rule in allowed):
            result.suppressed_noqa += 1
            continue
        survivors.append(finding)

    for finding in assign_fingerprints(survivors):
        if finding.fingerprint in baseline:
            result.suppressed_baseline += 1
        else:
            result.findings.append(finding)
    return result
