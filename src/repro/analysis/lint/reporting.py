"""Text, JSON, and SARIF reporters for lint results.

All renderers are pure (result -> str) so the CLI, tests, and CI can
share them; the JSON document is versioned and round-trips through
``json.loads`` losslessly (asserted by the CLI tests).  The SARIF
renderer emits SARIF 2.1.0 so CI can upload ``lint.sarif`` to GitHub
code scanning and findings surface as PR annotations.
"""

from __future__ import annotations

import json

from repro.analysis.lint.engine import LintResult

REPORT_VERSION = 1

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def render_text(result: LintResult) -> str:
    lines = [f.render() for f in
             sorted(result.findings,
                    key=lambda f: (f.path, f.line, f.col, f.rule))]
    counts = result.counts_by_rule()
    if counts:
        per_rule = ", ".join(f"{rule}: {n}" for rule, n in counts.items())
        lines.append("")
        lines.append(f"{len(result.findings)} finding"
                     f"{'s' if len(result.findings) != 1 else ''} "
                     f"({per_rule})")
    else:
        lines.append("no findings")
    lines.append(f"scanned {result.files_scanned} files "
                 f"(suppressed: {result.suppressed_noqa} noqa, "
                 f"{result.suppressed_baseline} baselined)")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    document = {
        "version": REPORT_VERSION,
        "findings": [f.to_json() for f in
                     sorted(result.findings,
                            key=lambda f: (f.path, f.line, f.col, f.rule))],
        "counts": result.counts_by_rule(),
        "files_scanned": result.files_scanned,
        "suppressed": {"noqa": result.suppressed_noqa,
                       "baseline": result.suppressed_baseline},
        "parse_errors": result.parse_errors,
        "exit_code": result.exit_code,
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 document for GitHub code scanning.

    Fingerprints ride along as ``partialFingerprints`` so code scanning
    tracks a finding across commits the same way the baseline does.
    """
    from repro.analysis.lint.rules import rule_table

    rules = [{"id": "REP000", "name": "syntax-error",
              "shortDescription": {"text": "file does not parse"}}]
    rules += [{"id": row["id"], "name": row["name"],
               "shortDescription": {"text": row["summary"]}}
              for row in rule_table()]
    index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = []
    for finding in sorted(result.findings,
                          key=lambda f: (f.path, f.line, f.col, f.rule)):
        entry = {
            "ruleId": finding.rule,
            "level": finding.level,
            "message": {"text": f"{finding.rule} {finding.message}"},
            "partialFingerprints": {"reproLint/v1": finding.fingerprint},
            "locations": [{"physicalLocation": {
                "artifactLocation": {"uri": finding.path,
                                     "uriBaseId": "%SRCROOT%"},
                "region": {"startLine": finding.line,
                           "startColumn": finding.col + 1,
                           "snippet": {"text": finding.snippet}},
            }}],
        }
        if finding.rule in index:
            entry["ruleIndex"] = index[finding.rule]
        results.append(entry)
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "rules": rules,
            }},
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=False)
