"""Text and JSON reporters for lint results.

Both renderers are pure (result -> str) so the CLI, tests, and CI can
share them; the JSON document is versioned and round-trips through
``json.loads`` losslessly (asserted by the CLI tests).
"""

from __future__ import annotations

import json

from repro.analysis.lint.engine import LintResult

REPORT_VERSION = 1


def render_text(result: LintResult) -> str:
    lines = [f.render() for f in
             sorted(result.findings,
                    key=lambda f: (f.path, f.line, f.col, f.rule))]
    counts = result.counts_by_rule()
    if counts:
        per_rule = ", ".join(f"{rule}: {n}" for rule, n in counts.items())
        lines.append("")
        lines.append(f"{len(result.findings)} finding"
                     f"{'s' if len(result.findings) != 1 else ''} "
                     f"({per_rule})")
    else:
        lines.append("no findings")
    lines.append(f"scanned {result.files_scanned} files "
                 f"(suppressed: {result.suppressed_noqa} noqa, "
                 f"{result.suppressed_baseline} baselined)")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    document = {
        "version": REPORT_VERSION,
        "findings": [f.to_json() for f in
                     sorted(result.findings,
                            key=lambda f: (f.path, f.line, f.col, f.rule))],
        "counts": result.counts_by_rule(),
        "files_scanned": result.files_scanned,
        "suppressed": {"noqa": result.suppressed_noqa,
                       "baseline": result.suppressed_baseline},
        "parse_errors": result.parse_errors,
        "exit_code": result.exit_code,
    }
    return json.dumps(document, indent=2, sort_keys=True)
