"""Per-file lint context: name resolution, scopes, and reporting.

The engine walks each module's AST exactly once; rules receive the node
plus a :class:`FileContext` that answers the questions every rule asks:
*what dotted name does this call resolve to* (through ``import numpy as
np`` style aliases), *am I inside an async function*, *which repro
module is this file*, and *record a finding here*.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.findings import Finding


def resolve_attribute(node: ast.AST) -> str | None:
    """Dotted source text of a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class FileContext:
    """Everything a rule may ask about the file being linted."""

    def __init__(self, *, path: str, module: str, tree: ast.AST,
                 source: str):
        self.path = path                  # repo-relative posix path
        self.module = module              # dotted module guess ("" if n/a)
        self.tree = tree
        self.source = source
        self.source_lines = source.splitlines()
        self.findings: list[Finding] = []
        # scope stacks maintained by the engine during the walk
        self.function_stack: list[ast.AST] = []
        self.class_stack: list[ast.ClassDef] = []
        self._aliases = self._collect_aliases(tree)

    # ------------------------------------------------------------ imports
    @staticmethod
    def _collect_aliases(tree: ast.AST) -> dict[str, str]:
        """Map local names to canonical dotted origins.

        ``import numpy as np``          -> {"np": "numpy"}
        ``from random import gauss``    -> {"gauss": "random.gauss"}
        ``from numpy import random``    -> {"random": "numpy.random"}
        Relative imports keep their module tail (best effort).
        """
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    aliases[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    aliases[local] = f"{node.module}.{alias.name}"
        return aliases

    def resolve_call(self, node: ast.Call) -> str | None:
        """Canonical dotted name of a call target, alias-expanded.

        ``np.random.seed(0)`` -> ``numpy.random.seed``; a call whose
        target is not a plain Name/Attribute chain resolves to None.
        """
        return self.resolve_name(node.func)

    def resolve_name(self, node: ast.AST) -> str | None:
        dotted = resolve_attribute(node)
        if dotted is None:
            return None
        head, _, tail = dotted.partition(".")
        origin = self._aliases.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{tail}" if tail else origin

    # ------------------------------------------------------------- scopes
    @property
    def in_async_function(self) -> bool:
        """True when the *innermost* enclosing function is async."""
        return bool(self.function_stack) and isinstance(
            self.function_stack[-1], ast.AsyncFunctionDef)

    def module_in(self, prefixes: tuple[str, ...]) -> bool:
        return any(self.module == p or self.module.startswith(p + ".")
                   for p in prefixes)

    def source_segment(self, node: ast.AST) -> str:
        """Exact source text of a node (single-line fallback: the line)."""
        segment = ast.get_source_segment(self.source, node)
        if segment is not None:
            return " ".join(segment.split())
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return "<source unavailable>"

    # ---------------------------------------------------------- reporting
    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = ""
        if 1 <= line <= len(self.source_lines):
            snippet = self.source_lines[line - 1].strip()
        self.findings.append(Finding(rule=rule_id, path=self.path,
                                     line=line, col=col, message=message,
                                     snippet=snippet))
