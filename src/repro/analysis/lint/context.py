"""Per-file lint context: name resolution, scopes, and reporting.

The engine walks each module's AST exactly once; rules receive the node
plus a :class:`FileContext` that answers the questions every rule asks:
*what dotted name does this call resolve to* (through ``import numpy as
np`` style aliases), *am I inside an async function*, *which repro
module is this file*, and *record a finding here*.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.findings import Finding


def resolve_attribute(node: ast.AST) -> str | None:
    """Dotted source text of a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class FileContext:
    """Everything a rule may ask about the file being linted."""

    def __init__(self, *, path: str, module: str, tree: ast.AST,
                 source: str, config=None):
        self.path = path                  # repo-relative posix path
        self.module = module              # dotted module guess ("" if n/a)
        self.tree = tree
        self.source = source
        self.source_lines = source.splitlines()
        self.findings: list[Finding] = []
        #: cross-file facts a rule collects here and consumes in its
        #: ``finalize`` once every file's facts are merged; values must
        #: be JSON-serializable (they ride the incremental cache)
        self.facts: dict[str, list] = {}
        # scope stacks maintained by the engine during the walk
        self.function_stack: list[ast.AST] = []
        self.class_stack: list[ast.ClassDef] = []
        self._aliases = self._collect_aliases(tree)
        self._config = config
        self._cfgs: dict[int, object] = {}
        self._module_returns: dict[str, list[str]] | None = None

    # ------------------------------------------------------------- config
    def in_rule_scope(self, rule_id: str) -> bool:
        """Does this rule's configured module scope cover this file?"""
        if self._config is None:
            return True
        return self._config.in_scope(rule_id, self.module)

    # -------------------------------------------------------- flow support
    def cfg_for(self, func: ast.AST):
        """The function's CFG, built once and shared across flow rules."""
        from repro.analysis.flow import build_cfg
        key = id(func)
        cfg = self._cfgs.get(key)
        if cfg is None:
            cfg = self._cfgs[key] = build_cfg(func)
        return cfg

    @property
    def factory_returns(self) -> dict[str, list[str]]:
        """``local function -> dotted names it returns`` (same module);
        lets flow rules see through ``cls = _factory()`` indirection."""
        if self._module_returns is None:
            from repro.analysis.flow import module_returns
            self._module_returns = module_returns(self.tree, self._aliases)
        return self._module_returns

    def add_fact(self, rule_id: str, fact: dict) -> None:
        """Record a JSON-serializable cross-file fact for ``rule_id``."""
        self.facts.setdefault(rule_id, []).append(fact)

    # ------------------------------------------------------------ imports
    @staticmethod
    def _collect_aliases(tree: ast.AST) -> dict[str, str]:
        """Map local names to canonical dotted origins.

        ``import numpy as np``          -> {"np": "numpy"}
        ``from random import gauss``    -> {"gauss": "random.gauss"}
        ``from numpy import random``    -> {"random": "numpy.random"}
        Relative imports keep their module tail (best effort).
        """
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    aliases[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    aliases[local] = f"{node.module}.{alias.name}"
        return aliases

    def resolve_call(self, node: ast.Call) -> str | None:
        """Canonical dotted name of a call target, alias-expanded.

        ``np.random.seed(0)`` -> ``numpy.random.seed``; a call whose
        target is not a plain Name/Attribute chain resolves to None.
        """
        return self.resolve_name(node.func)

    def resolve_name(self, node: ast.AST) -> str | None:
        dotted = resolve_attribute(node)
        if dotted is None:
            return None
        head, _, tail = dotted.partition(".")
        origin = self._aliases.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{tail}" if tail else origin

    # ------------------------------------------------------------- scopes
    @property
    def in_async_function(self) -> bool:
        """True when the *innermost* enclosing function is async."""
        return bool(self.function_stack) and isinstance(
            self.function_stack[-1], ast.AsyncFunctionDef)

    def module_in(self, prefixes: tuple[str, ...]) -> bool:
        return any(self.module == p or self.module.startswith(p + ".")
                   for p in prefixes)

    def source_segment(self, node: ast.AST) -> str:
        """Exact source text of a node (single-line fallback: the line)."""
        segment = ast.get_source_segment(self.source, node)
        if segment is not None:
            return " ".join(segment.split())
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return "<source unavailable>"

    # ---------------------------------------------------------- reporting
    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = ""
        if 1 <= line <= len(self.source_lines):
            snippet = self.source_lines[line - 1].strip()
        self.findings.append(Finding(rule=rule_id, path=self.path,
                                     line=line, col=col, message=message,
                                     snippet=snippet))
