"""Finding records and stable fingerprints.

A finding's *fingerprint* identifies the same logical problem across
commits so a checked-in baseline keeps grandfathered findings quiet
without pinning line numbers.  It hashes the rule id, the file's
repo-relative path, the stripped source line, and an occurrence index
(the n-th identical line in that file), so findings survive unrelated
edits above or below them but change when the flagged code changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str          # "REP001"
    path: str          # repo-relative posix path
    line: int          # 1-based
    col: int           # 0-based, matching ast
    message: str
    snippet: str = ""  # stripped source line, for reports and fingerprints
    level: str = "warning"    # SARIF level: "warning" | "note" | "error"
    fingerprint: str = field(default="", compare=False)

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule} {self.message}")

    def to_json(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message,
                "snippet": self.snippet, "level": self.level,
                "fingerprint": self.fingerprint}

    @classmethod
    def from_json(cls, doc: dict) -> "Finding":
        return cls(rule=doc["rule"], path=doc["path"], line=doc["line"],
                   col=doc["col"], message=doc["message"],
                   snippet=doc.get("snippet", ""),
                   level=doc.get("level", "warning"),
                   fingerprint=doc.get("fingerprint", ""))


def _digest(rule: str, path: str, snippet: str, occurrence: int) -> str:
    text = f"{rule}|{path}|{snippet}|{occurrence}".encode()
    return hashlib.sha256(text).hexdigest()[:16]


def assign_fingerprints(findings: list[Finding]) -> list[Finding]:
    """Return findings with fingerprints, stable under line motion.

    Occurrence indices are assigned in (line, col) order within each
    (rule, path, snippet) group, so two identical violations in one file
    get distinct fingerprints.
    """
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
    seen: dict[tuple, int] = {}
    out = []
    for finding in ordered:
        key = (finding.rule, finding.path, finding.snippet)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append(replace(finding, fingerprint=_digest(
            finding.rule, finding.path, finding.snippet, occurrence)))
    return out
