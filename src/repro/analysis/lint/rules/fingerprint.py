"""REP009 — fingerprint completeness (cross-file).

``ResultCache`` keys fold in :func:`repro.core.fastpath
.engine_fingerprint` so a cached result is invalidated when the engine
that produced it changes.  That only works if *every* engine name the
codebase accepts actually contributes a version field there: an engine
registered in an ``ENGINES``/``MESH_ENGINES`` tuple but missing from
``engine_fingerprint`` silently serves stale cache entries across
kernel changes — the exact staleness bug the fingerprint exists to
prevent.

Two kinds of per-file facts feed :meth:`finalize`:

* **registrations** — module-level ``*ENGINES = ("...", ...)`` tuples
  of string constants (the selector vocabularies);
* **fingerprints** — inside any function named ``engine_fingerprint``,
  a branch comparing the engine to a string constant whose body returns
  a dict carrying a ``*_version`` key marks that engine as versioned.

Every registered engine except the golden ``"scalar"`` (version-free
by design: its results *define* correctness) must be fingerprinted
somewhere in the linted tree.  The check is cross-file by nature —
``MESH_ENGINES`` lives in ``fastmesh.py``, the fingerprint in
``fastpath/__init__.py`` — which is exactly what the facts model is
for.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.rules import Rule

#: The golden engine is version-free by design.
_EXEMPT = frozenset({"scalar"})

_FINGERPRINT_FN = "engine_fingerprint"


def _registered_engines(node: ast.Assign) -> list[str] | None:
    """Engine strings when ``node`` is ``*ENGINES = ("a", "b", ...)``."""
    if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
        return None
    if not node.targets[0].id.endswith("ENGINES"):
        return None
    value = node.value
    if not isinstance(value, (ast.Tuple, ast.List)):
        return None
    names: list[str] = []
    for element in value.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        names.append(element.value)
    return names


def _fingerprinted_engines(func: ast.AST) -> list[str]:
    """Engine strings versioned inside an ``engine_fingerprint`` body.

    A branch ``if <name> == "X":`` (or the symmetric compare) whose body
    returns a dict literal with a key ending ``_version`` versions
    engine ``"X"``.
    """
    versioned: list[str] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Eq)):
            continue
        sides = [test.left, test.comparators[0]]
        literals = [s.value for s in sides
                    if isinstance(s, ast.Constant)
                    and isinstance(s.value, str)]
        if len(literals) != 1:
            continue
        for sub in node.body:
            for ret in ast.walk(sub):
                if isinstance(ret, ast.Return) and \
                        isinstance(ret.value, ast.Dict) and any(
                            isinstance(k, ast.Constant)
                            and isinstance(k.value, str)
                            and k.value.endswith("_version")
                            for k in ret.value.keys):
                    versioned.append(literals[0])
    return versioned


class FingerprintCompletenessRule(Rule):
    id = "REP009"
    name = "fingerprint-completeness"
    summary = ("every engine registered in *ENGINES tuples must carry a "
               "*_version field in engine_fingerprint (scalar exempt), "
               "or ResultCache serves stale entries")
    interests = ("Assign", "FunctionDef")

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.Assign):
            if ctx.function_stack or ctx.class_stack:
                return              # only module-level registries
            engines = _registered_engines(node)
            if engines is not None:
                ctx.add_fact(self.id, {
                    "kind": "registry", "engines": engines,
                    "path": ctx.path, "line": node.lineno,
                    "name": node.targets[0].id,
                    "snippet": ctx.source_segment(node)})
            return
        if node.name != _FINGERPRINT_FN:
            return
        ctx.add_fact(self.id, {
            "kind": "fingerprint",
            "engines": _fingerprinted_engines(node),
            "path": ctx.path, "line": node.lineno})

    def finalize(self, facts: list[dict], report) -> None:
        fingerprint_sites = [f for f in facts if f["kind"] == "fingerprint"]
        if not fingerprint_sites:
            return          # engine_fingerprint not in the linted path set
        versioned: set[str] = set()
        for fact in fingerprint_sites:
            versioned.update(fact["engines"])
        for fact in facts:
            if fact["kind"] != "registry":
                continue
            for engine in fact["engines"]:
                if engine in _EXEMPT or engine in versioned:
                    continue
                report(self.id, fact["path"], fact["line"], 0,
                       f"engine '{engine}' (registered in `{fact['name']}`)"
                       " contributes no *_version field in "
                       "engine_fingerprint; cached results for it survive "
                       "engine changes — add a versioned branch",
                       fact["snippet"])
