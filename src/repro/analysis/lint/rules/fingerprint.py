"""REP009 — fingerprint completeness (cross-file).

``ResultCache`` keys fold in :func:`repro.core.fastpath
.engine_fingerprint` so a cached result is invalidated when the engine
that produced it changes.  That only works if *every* engine name the
codebase accepts actually contributes a version field there: an engine
registered in an ``ENGINES``/``MESH_ENGINES`` tuple but missing from
``engine_fingerprint`` silently serves stale cache entries across
kernel changes — the exact staleness bug the fingerprint exists to
prevent.

The registry form of the check is local: every
:func:`repro.engines.register` call naming a non-golden engine must
pass ``version=`` (the registry derives the fingerprint from it); a
registration without one produces engines whose cached results survive
kernel changes.  The golden ``"scalar"`` engines are version-free by
design: their results *define* correctness.

The legacy form is cross-file, and still guards trees (and fixtures)
that predate the registry.  Two kinds of per-file facts feed
:meth:`finalize`:

* **registrations** — module-level ``*ENGINES = ("...", ...)`` tuples
  of string constants (the selector vocabularies);
* **fingerprints** — inside any function named ``engine_fingerprint``,
  a branch comparing the engine to a string constant whose body returns
  a dict carrying a ``*_version`` key marks that engine as versioned.

Every tuple-registered engine except ``"scalar"`` must be fingerprinted
somewhere in the linted tree — ``MESH_ENGINES`` lives in one module,
the fingerprint in another, which is exactly what the facts model is
for.  ``*ENGINES`` assignments whose value is *derived from the
registry* (``engines.names(...)``) are not literal tuples and carry no
obligation: the register() check already covers their contents.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.rules import Rule

#: The golden engine is version-free by design.
_EXEMPT = frozenset({"scalar"})

_FINGERPRINT_FN = "engine_fingerprint"

_REGISTER_FN = "repro.engines.register"


def _register_call(node: ast.Call) -> tuple[str, bool] | None:
    """``(engine_name, has_version)`` for a registry register() call.

    ``None`` when the engine name is not a string literal (dynamic
    registration is out of scope for a static check).
    """
    name = None
    if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant) \
            and isinstance(node.args[1].value, str):
        name = node.args[1].value
    has_version = False
    for kw in node.keywords:
        if kw.arg == "name" and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, str):
            name = kw.value.value
        if kw.arg == "version" and not (
                isinstance(kw.value, ast.Constant)
                and kw.value.value is None):
            has_version = True
    if name is None:
        return None
    return name, has_version


def _registered_engines(node: ast.Assign) -> list[str] | None:
    """Engine strings when ``node`` is ``*ENGINES = ("a", "b", ...)``."""
    if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
        return None
    if not node.targets[0].id.endswith("ENGINES"):
        return None
    value = node.value
    if not isinstance(value, (ast.Tuple, ast.List)):
        return None
    names: list[str] = []
    for element in value.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        names.append(element.value)
    return names


def _fingerprinted_engines(func: ast.AST) -> list[str]:
    """Engine strings versioned inside an ``engine_fingerprint`` body.

    A branch ``if <name> == "X":`` (or the symmetric compare) whose body
    returns a dict literal with a key ending ``_version`` versions
    engine ``"X"``.
    """
    versioned: list[str] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Eq)):
            continue
        sides = [test.left, test.comparators[0]]
        literals = [s.value for s in sides
                    if isinstance(s, ast.Constant)
                    and isinstance(s.value, str)]
        if len(literals) != 1:
            continue
        for sub in node.body:
            for ret in ast.walk(sub):
                if isinstance(ret, ast.Return) and \
                        isinstance(ret.value, ast.Dict) and any(
                            isinstance(k, ast.Constant)
                            and isinstance(k.value, str)
                            and k.value.endswith("_version")
                            for k in ret.value.keys):
                    versioned.append(literals[0])
    return versioned


class FingerprintCompletenessRule(Rule):
    id = "REP009"
    name = "fingerprint-completeness"
    summary = ("every non-golden engine — repro.engines.register() calls "
               "and legacy *ENGINES tuples — must carry a *_version "
               "fingerprint (scalar exempt), or ResultCache serves stale "
               "entries")
    interests = ("Assign", "FunctionDef", "Call")

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.Call):
            resolved = ctx.resolve_call(node)
            if resolved != _REGISTER_FN and not (
                    resolved == "register"
                    and ctx.module == "repro.engines"):
                return
            info = _register_call(node)
            if info is None:
                return
            engine, has_version = info
            if engine in _EXEMPT or has_version:
                return
            ctx.report(self.id, node,
                       f"engine '{engine}' registered without a version; "
                       "cached results for it survive kernel changes — "
                       "pass version=<MODULE>_VERSION (the registry "
                       "derives the fingerprint from it)")
            return
        if isinstance(node, ast.Assign):
            if ctx.function_stack or ctx.class_stack:
                return              # only module-level registries
            engines = _registered_engines(node)
            if engines is not None:
                ctx.add_fact(self.id, {
                    "kind": "registry", "engines": engines,
                    "path": ctx.path, "line": node.lineno,
                    "name": node.targets[0].id,
                    "snippet": ctx.source_segment(node)})
            return
        if node.name != _FINGERPRINT_FN:
            return
        ctx.add_fact(self.id, {
            "kind": "fingerprint",
            "engines": _fingerprinted_engines(node),
            "path": ctx.path, "line": node.lineno})

    def finalize(self, facts: list[dict], report) -> None:
        fingerprint_sites = [f for f in facts if f["kind"] == "fingerprint"]
        if not fingerprint_sites:
            return          # engine_fingerprint not in the linted path set
        versioned: set[str] = set()
        for fact in fingerprint_sites:
            versioned.update(fact["engines"])
        for fact in facts:
            if fact["kind"] != "registry":
                continue
            for engine in fact["engines"]:
                if engine in _EXEMPT or engine in versioned:
                    continue
                report(self.id, fact["path"], fact["line"], 0,
                       f"engine '{engine}' (registered in `{fact['name']}`)"
                       " contributes no *_version field in "
                       "engine_fingerprint; cached results for it survive "
                       "engine changes — add a versioned branch",
                       fact["snippet"])
