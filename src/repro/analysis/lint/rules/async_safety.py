"""REP002 — async-safety: keep the event loop unblocked.

``repro.serve`` is a single asyncio event loop; one blocking call in an
``async def`` stalls every in-flight request.  Four checks:

* blocking calls (``time.sleep``, sync file I/O, ``subprocess``/
  ``os.system``) inside any ``async def``;
* a ``threading.Lock``-ish context manager held across an ``await``
  (deadlock + loop stall: the loop may never reach the releasing task);
* ``time.sleep`` anywhere in ``repro.serve`` — even sync helpers run
  near the loop, so the blocking *sync client* must opt in with an
  explicit ``# repro: noqa[REP002]``;
* ``pickle.dump(s)`` or ``SharedMemory`` creation inside an ``async
  def`` in ``repro.serve`` — result serialization and segment setup
  belong to the worker tier (or a thread), not the loop: pickling a
  multi-megabyte result stalls every request for its full duration,
  and the worker tier's transport contract is pickle-free.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import FileContext, resolve_attribute
from repro.analysis.lint.rules import Rule

ASYNC_PACKAGES = ("repro.serve", "repro.traffic")

_BLOCKING = {"time.sleep", "open", "io.open", "os.system",
             "subprocess.run", "subprocess.call", "subprocess.check_call",
             "subprocess.check_output", "subprocess.Popen",
             "socket.create_connection", "urllib.request.urlopen"}

#: Serialization/transport setup banned from serve-layer coroutines:
#: the worker tier owns result transport (canonical JSON + shm), and
#: both pickling and segment creation are unbounded-latency work.
_SERVE_TRANSPORT = ("pickle.dump", "pickle.dumps")

_SHM_CREATOR = "SharedMemory"

_LOCKISH = ("lock", "mutex", "semaphore", "condition")

_SANCTIONED_LOCKS = ("asyncio.Lock", "asyncio.Semaphore",
                     "asyncio.Condition", "asyncio.BoundedSemaphore")


def _looks_like_thread_lock(item: ast.withitem, ctx: FileContext) -> bool:
    """Heuristic: context expr names a lock and is not asyncio's."""
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        resolved = ctx.resolve_call(expr)
        if resolved and resolved.startswith("asyncio."):
            return False
        expr = expr.func
    resolved = resolve_attribute(expr)
    if resolved is None:
        return False
    if any(resolved == s or resolved.endswith("." + s)
           for s in _SANCTIONED_LOCKS):
        return False
    terminal = resolved.rsplit(".", 1)[-1].lower()
    return any(word in terminal for word in _LOCKISH)


class AsyncSafetyRule(Rule):
    id = "REP002"
    name = "async-safety"
    summary = ("no blocking calls in `async def`, no thread locks held "
               "across `await`, no time.sleep / coroutine pickling / "
               "SharedMemory setup in repro.serve")
    interests = ("Call", "With")

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.Call):
            self._check_call(node, ctx)
        elif isinstance(node, ast.With):
            self._check_with(node, ctx)

    def _check_call(self, node: ast.Call, ctx: FileContext) -> None:
        target = ctx.resolve_call(node)
        if target is None:
            return
        if ctx.in_async_function and target in _BLOCKING:
            ctx.report(self.id, node,
                       f"blocking call `{target}()` inside `async def "
                       f"{ctx.function_stack[-1].name}`; use an awaitable "
                       "(asyncio.sleep / to_thread / run_in_executor)")
        elif (target == "time.sleep" and not ctx.in_async_function
              and ctx.module_in(ASYNC_PACKAGES)):
            ctx.report(self.id, node,
                       "time.sleep in repro.serve blocks threads the event "
                       "loop shares; an intentionally-blocking sync helper "
                       "needs `# repro: noqa[REP002]`")
        elif ctx.in_async_function and ctx.module_in(ASYNC_PACKAGES):
            if target in _SERVE_TRANSPORT:
                ctx.report(self.id, node,
                           f"`{target}()` inside `async def "
                           f"{ctx.function_stack[-1].name}`: result "
                           "transport is the worker tier's job — ship "
                           "canonical JSON bytes, or serialize in "
                           "asyncio.to_thread")
            elif target == _SHM_CREATOR or \
                    target.endswith("." + _SHM_CREATOR):
                ctx.report(self.id, node,
                           f"SharedMemory creation inside `async def "
                           f"{ctx.function_stack[-1].name}` blocks the "
                           "loop on segment setup; create segments in "
                           "worker processes or a thread")

    def _check_with(self, node: ast.With, ctx: FileContext) -> None:
        if not ctx.in_async_function:
            return
        if not any(_looks_like_thread_lock(item, ctx) for item in node.items):
            return
        for child in node.body:
            for sub in ast.walk(child):
                if isinstance(sub, ast.Await):
                    ctx.report(self.id, sub,
                               "thread lock held across `await`; the loop "
                               "can starve the releasing task — use "
                               "asyncio.Lock or release before awaiting")
                    return
