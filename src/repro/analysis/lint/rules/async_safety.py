"""REP002 — async-safety: keep the event loop unblocked.

``repro.serve`` is a single asyncio event loop; one blocking call in an
``async def`` stalls every in-flight request.  Three syntactic checks
(the scope comes from ``[tool.repro.lint.scopes.REP002]``, default
``repro.serve`` + ``repro.traffic``):

* blocking calls (``time.sleep``, sync file I/O, ``subprocess``/
  ``os.system``) inside any ``async def``;
* ``time.sleep`` anywhere in scope — even sync helpers run near the
  loop, so the blocking *sync client* must opt in with an explicit
  ``# repro: noqa[REP002]``;
* ``pickle.dump(s)`` or ``SharedMemory`` creation inside an ``async
  def`` — result serialization and segment setup belong to the worker
  tier (or a thread), not the loop: pickling a multi-megabyte result
  stalls every request for its full duration, and the worker tier's
  transport contract is pickle-free.

The *thread lock held across an await* check that used to live here is
now REP007 (:mod:`repro.analysis.lint.rules.async_flow`), which tracks
lock state along CFG paths instead of requiring the ``with`` block and
the ``await`` to be syntactically nested.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.rules import Rule

_BLOCKING = {"time.sleep", "open", "io.open", "os.system",
             "subprocess.run", "subprocess.call", "subprocess.check_call",
             "subprocess.check_output", "subprocess.Popen",
             "socket.create_connection", "urllib.request.urlopen"}

#: Serialization/transport setup banned from serve-layer coroutines:
#: the worker tier owns result transport (canonical JSON + shm), and
#: both pickling and segment creation are unbounded-latency work.
_SERVE_TRANSPORT = ("pickle.dump", "pickle.dumps")

_SHM_CREATOR = "SharedMemory"


class AsyncSafetyRule(Rule):
    id = "REP002"
    name = "async-safety"
    summary = ("no blocking calls in `async def`, no time.sleep / "
               "coroutine pickling / SharedMemory setup in repro.serve")
    interests = ("Call",)

    def check(self, node: ast.Call, ctx: FileContext) -> None:
        if not ctx.in_rule_scope(self.id):
            return
        target = ctx.resolve_call(node)
        if target is None:
            return
        if ctx.in_async_function and target in _BLOCKING:
            ctx.report(self.id, node,
                       f"blocking call `{target}()` inside `async def "
                       f"{ctx.function_stack[-1].name}`; use an awaitable "
                       "(asyncio.sleep / to_thread / run_in_executor)")
        elif target == "time.sleep" and not ctx.in_async_function:
            ctx.report(self.id, node,
                       "time.sleep in repro.serve blocks threads the event "
                       "loop shares; an intentionally-blocking sync helper "
                       "needs `# repro: noqa[REP002]`")
        elif ctx.in_async_function:
            if target in _SERVE_TRANSPORT:
                ctx.report(self.id, node,
                           f"`{target}()` inside `async def "
                           f"{ctx.function_stack[-1].name}`: result "
                           "transport is the worker tier's job — ship "
                           "canonical JSON bytes, or serialize in "
                           "asyncio.to_thread")
            elif target == _SHM_CREATOR or \
                    target.endswith("." + _SHM_CREATOR):
                ctx.report(self.id, node,
                           f"SharedMemory creation inside `async def "
                           f"{ctx.function_stack[-1].name}` blocks the "
                           "loop on segment setup; create segments in "
                           "worker processes or a thread")
