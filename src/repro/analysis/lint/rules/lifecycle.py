"""REP008 — SHM / file-descriptor lifecycle (flow-sensitive).

A ``SharedMemory`` segment that is opened and never closed leaks a file
descriptor *and* (if created) a ``/dev/shm`` segment that outlives the
process; an ``os.open`` descriptor held for a file lock leaks the same
way.  The serve tier's whole transport rides on shm segments, so a
single leaky path under load exhausts descriptors.

The rule runs a may-be-open analysis over each function's CFG: a
resource created on a path must reach ``close()``/``unlink()``
(``os.close`` for raw descriptors) on **every** path that reaches the
function's normal exit.  Exception paths that *propagate* are exempt
(the caller cannot close what the callee never returned and the crash
is the finding's cause, not the leak) — but a swallowed exception path
that rejoins normal flow with the resource still open is flagged, which
is exactly the ``except: pass`` + leak shape.

Ownership transfers are exempt: a handle that is returned, yielded,
stored on an object/container, or passed to another call has an owner
responsible for it elsewhere.  ``with`` blocks close on all paths by
construction and are never flagged.  Module-level factories are
resolved (``cls = _shared_memory(); buf = cls(...)`` still counts as a
creation) via the module call graph.
"""

from __future__ import annotations

import ast

from repro.analysis.flow import (DataflowAnalysis, ENTER_WITH, Env, STMT,
                                 Tag, step_assigned_names,
                                 step_expressions)
from repro.analysis.lint.context import FileContext
from repro.analysis.lint.rules import Rule

_SHM = "SharedMemory"
_CLOSERS = frozenset({"close", "unlink", "release", "shutdown"})

#: synthetic env key for the open-resource set
_OPEN = "@open"


def _creator_kind(call: ast.Call, ctx: FileContext) -> str | None:
    """``"shm"`` / ``"fd"`` when ``call`` opens a tracked resource."""
    target = ctx.resolve_call(call)
    if target is None:
        # `buf = cls(...)` where `cls = _shared_memory()` came from a
        # module-level factory: resolved through the call graph below
        return None
    if target == _SHM or target.endswith("." + _SHM):
        return "shm"
    if target == "os.open":
        return "fd"
    if "." not in target:
        # a local factory that returns the SharedMemory *class* makes
        # direct calls of it constructions too (rare, but cheap to hold)
        for returned in ctx.factory_returns.get(target, ()):
            if returned == _SHM or returned.endswith("." + _SHM):
                return "shm"
    return None


class _LifecycleAnalysis(DataflowAnalysis):
    """Env: resource names -> tags, plus ``@open`` -> may-open tag set."""

    def __init__(self, cfg, ctx: FileContext, rule_id: str):
        super().__init__(cfg)
        self.ctx = ctx
        self.rule_id = rule_id
        self.escaped: set[Tag] = set()
        self.sites: dict[Tag, ast.AST] = {}

    def entry_state(self) -> Env:
        return Env()

    def initial_state(self) -> Env:
        return Env()

    def join(self, a: Env, b: Env) -> Env:
        return a.join(b)

    # ------------------------------------------------------------ helpers
    def _creator_tag(self, value: ast.AST, env: Env) -> Tag | None:
        if not isinstance(value, ast.Call):
            return None
        kind = _creator_kind(value, self.ctx)
        if kind is None and isinstance(value.func, ast.Name) and \
                env.get(f"@cls:{value.func.id}"):
            kind = "shm"
        if kind is None:
            return None
        return Tag(kind, value.lineno, value.col_offset)

    @staticmethod
    def _is_factory_class(value: ast.AST, ctx: FileContext) -> bool:
        """``_shared_memory()`` — a local factory returning the class."""
        if not (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)):
            return False
        for returned in ctx.factory_returns.get(value.func.id, ()):
            if returned == _SHM or returned.endswith("." + _SHM):
                return True
        return False

    # ------------------------------------------------------------ transfer
    def transfer_step(self, step, env: Env) -> Env:
        node = step.node
        if step.kind == ENTER_WITH:
            return env      # context managers close themselves
        if step.kind == STMT and isinstance(node, ast.Assign):
            value = node.value
            if self._is_factory_class(value, self.ctx):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        env = env.bind(f"@cls:{target.id}",
                                       {Tag("shmcls", value.lineno)})
                return env
            tag = self._creator_tag(value, env)
            if tag is not None:
                self.sites.setdefault(tag, value)
                env = env.bind(_OPEN, env.get(_OPEN) | {tag})
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        env = env.bind(target.id, {tag})
                    else:
                        # self.buf = SharedMemory(...): the object owns it
                        self.escaped.add(tag)
                return env
            if isinstance(value, ast.Name):     # alias: b2 = buf
                alias = env.get(value.id)
                if alias:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            env = env.bind(target.id, alias)
                    return env
        closed: set[Tag] = set()
        for call in (sub for sub in step_expressions(step)
                     if isinstance(sub, ast.Call)):
            func = call.func
            if self.ctx.resolve_call(call) == "os.close":
                for arg in call.args[:1]:
                    if isinstance(arg, ast.Name):
                        closed |= env.get(arg.id)
            elif isinstance(func, ast.Attribute) and \
                    func.attr in _CLOSERS and \
                    isinstance(func.value, ast.Name):
                closed |= env.get(func.value.id)
        if closed:
            env = env.bind(_OPEN, env.get(_OPEN) - closed)
        for name in step_assigned_names(step):
            env = env.bind(name, frozenset())
        return env

    # ------------------------------------------------------------- escapes
    def visit_step(self, step, env: Env) -> None:
        node = step.node
        if step.kind != STMT:
            return
        if isinstance(node, ast.Return) and node.value is not None:
            self._escape_names(node.value, env)
        elif isinstance(node, ast.Assign) and any(
                not isinstance(t, ast.Name) for t in node.targets):
            self._escape_names(node.value, env)   # self.buf = buf, d[k] = buf
        for sub in step_expressions(step):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)) and \
                    sub.value is not None:
                self._escape_names(sub.value, env)
            elif isinstance(sub, ast.Call):
                self._escape_call_args(sub, env)

    def _escape_names(self, expr: ast.AST, env: Env) -> None:
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Attribute):
                continue    # `return buf.name` reads a field; the handle
            if isinstance(node, ast.Call):      # itself does not escape
                continue    # calls go through _escape_call_args, which
            if isinstance(node, ast.Name):      # knows the os./fcntl
                self.escaped |= env.get(node.id)        # use-not-transfer
                continue                                # exemption
            stack.extend(ast.iter_child_nodes(node))

    def _escape_call_args(self, call: ast.Call, env: Env) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _CLOSERS:
            return                              # buf.close() is not an escape
        target = self.ctx.resolve_call(call)
        if target is not None and (target.startswith("os.")
                                   or target.startswith("fcntl.")):
            return      # os.read(fd)/flock(fd) use the descriptor; the
        # caller still owns it — anything else may take ownership
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            self._escape_names(arg, env)


class ResourceLifecycleRule(Rule):
    id = "REP008"
    name = "resource-lifecycle"
    summary = ("every SharedMemory / os.open create must reach close/"
               "unlink on all paths to the normal exit (ownership "
               "transfers exempt)")
    mode = "flow"

    def check_function(self, func, cfg, ctx: FileContext) -> None:
        analysis = _LifecycleAnalysis(cfg, ctx, self.id)
        states = analysis.run()
        still_open = analysis.exit_state(states).get(_OPEN)
        for tag in sorted(still_open - frozenset(analysis.escaped)):
            site = analysis.sites.get(tag)
            if site is None:
                continue
            what = ("SharedMemory segment" if tag.kind == "shm"
                    else "os.open descriptor")
            ctx.report(self.id, site,
                       f"{what} opened here may reach `{func.name}`'s "
                       "return without close/unlink on some path; close "
                       "in a finally (or hand ownership off explicitly)")
