"""REP004 — golden-model parity: optimized twins must track their golden.

The optimized mesh engine is validated flit-for-flit against the
retained reference implementation (``tests/test_mesh_equivalence.py``),
but that suite only covers API surface *both* classes expose.  This rule
compares the public API of each watched class pair across files during
:meth:`finalize`:

* a public method/property on one side and not the other;
* property-vs-method kind drift (callers would need ``()`` on one side);
* required (default-less) parameter drift in name or order.

Extra *defaulted* parameters on either side are allowed — that is how
the optimized engine grows opt-in features (``retain_packets=False``)
without forking the golden model's contract.

The same discipline covers the vectorized measurement engine and the
batched mesh kernel (:data:`WATCHED_FUNCTION_PAIRS`): each scalar
measurement API and its ``repro.core.fastpath`` twin — and each mesh
entry point and its ``repro.noc.mesh.fastmesh`` twin — must agree on
required parameters, and the scalar side must keep its ``engine=``
selector — otherwise the fast path exists but the equivalence suite and
callers cannot reach it.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.rules import Rule

#: (module_a, class_a, module_b, class_b) pairs kept in lockstep.
WATCHED_PAIRS = (
    ("repro.noc.mesh.network", "Mesh2D",
     "repro.noc.mesh.reference", "ReferenceMesh2D"),
    ("repro.noc.mesh.vc", "VCMesh",
     "repro.noc.mesh.vcmesh_batched", "BatchedVCMesh"),
)

#: (scalar_module, scalar_fn, fast_module, fast_fn) pairs: the scalar
#: golden APIs and their vectorized (fastpath) / batched (fastmesh)
#: twins.
WATCHED_FUNCTION_PAIRS = (
    ("repro.core.latency_bench", "measured_latency_matrix",
     "repro.core.fastpath.latency", "vectorized_latency_matrix"),
    ("repro.core.bandwidth_bench", "slice_bandwidth_distribution",
     "repro.core.fastpath.bandwidth", "vectorized_bandwidth_distribution"),
    ("repro.core.bandwidth_bench", "slice_saturation_curve",
     "repro.core.fastpath.bandwidth", "vectorized_saturation_curve"),
    ("repro.noc.mesh.loadcurve", "sweep_load",
     "repro.noc.mesh.fastmesh", "batched_sweep_load"),
    ("repro.noc.mesh.traffic", "run_fairness_experiment",
     "repro.noc.mesh.fastmesh", "batched_fairness_experiment"),
    ("repro.noc.mesh.traffic", "run_fairness_experiments",
     "repro.noc.mesh.fastmesh", "batched_fairness_experiments"),
    ("repro.noc.mesh.interfaces", "run_reply_bottleneck",
     "repro.noc.mesh.fastmesh", "batched_reply_bottleneck"),
    ("repro.noc.mesh.vc", "run_shared_network_experiment",
     "repro.noc.mesh.vcmesh_batched", "batched_shared_network_experiment"),
    ("repro.noc.mesh.vc", "sweep_vc_grid",
     "repro.noc.mesh.vcmesh_batched", "batched_vc_grid"),
)

#: Defaulted parameters the scalar side owns (execution knobs the
#: vectorized twin does not mirror).
_SCALAR_ONLY_PARAMS = frozenset({"jobs", "engine"})

#: The leading batch-selector parameter of lane-batched twins
#: (``BatchedVCMesh.inject(lane, packet)`` mirrors
#: ``VCMesh.inject(packet)``): stripped before required-param
#: comparison.
_LANE_PARAM = "lane"

#: Public members a batched twin may carry beyond the scalar model:
#: lane-batch accessors with no scalar counterpart by design.
_BATCHED_ONLY_MEMBERS = frozenset({"last_ejected"})


def _strip_lane(required: list) -> list:
    return required[1:] if required[:1] == [_LANE_PARAM] else required


def _required_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple:
    """Names of default-less positional parameters, ``self`` excluded."""
    args = fn.args
    positional = args.posonlyargs + args.args
    required = positional[:len(positional) - len(args.defaults)]
    names = [a.arg for a in required]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return tuple(names)


def _class_fact(path: str, node: ast.ClassDef) -> dict:
    """JSON-serializable public-API descriptor of a watched class."""
    members: dict[str, dict] = {}
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if stmt.name.startswith("_") and stmt.name != "__init__":
            continue
        decorators = {d.id for d in stmt.decorator_list
                      if isinstance(d, ast.Name)}
        members[stmt.name] = {
            "kind": "property" if "property" in decorators else "method",
            "required": list(_required_params(stmt)),
            "line": stmt.lineno,
            "snippet": f"def {stmt.name}",
        }
    return {"path": path, "line": node.lineno, "members": members}


def _function_fact(path: str, node) -> dict:
    args = node.args
    return {"path": path, "line": node.lineno,
            "required": list(_required_params(node)),
            "params": [a.arg for a in
                       args.posonlyargs + args.args + args.kwonlyargs],
            "snippet": f"def {node.name}"}


class GoldenModelParityRule(Rule):
    id = "REP004"
    name = "golden-model-parity"
    summary = ("golden-model APIs must not drift: Mesh2D vs ReferenceMesh2D "
               "(methods, kinds, required params) and scalar measurement "
               "functions vs their repro.core.fastpath twins")
    interests = ("ClassDef", "FunctionDef")

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.ClassDef):
            for pair in WATCHED_PAIRS:
                for module, cls in (pair[:2], pair[2:]):
                    if ctx.module == module and node.name == cls:
                        ctx.add_fact(self.id, {
                            "module": module, "name": cls,
                            "api": _class_fact(ctx.path, node)})
            return
        if node.col_offset != 0:        # only module-level functions
            return
        for pair in WATCHED_FUNCTION_PAIRS:
            for module, fn in (pair[:2], pair[2:]):
                if ctx.module == module and node.name == fn:
                    ctx.add_fact(self.id, {
                        "module": module, "name": fn,
                        "fn": _function_fact(ctx.path, node)})

    def finalize(self, facts: list[dict], report) -> None:
        classes: dict[tuple[str, str], dict] = {}
        functions: dict[tuple[str, str], dict] = {}
        for fact in facts:
            key = (fact["module"], fact["name"])
            if "api" in fact:
                classes[key] = fact["api"]
            else:
                functions[key] = fact["fn"]
        for mod_a, cls_a, mod_b, cls_b in WATCHED_PAIRS:
            api_a = classes.get((mod_a, cls_a))
            api_b = classes.get((mod_b, cls_b))
            if api_a is None or api_b is None:
                continue        # pair not in the linted path set
            self._diff(report, cls_a, api_a, cls_b, api_b,
                       check_common=True)
            # reverse direction only hunts members missing on the first
            # side; common-member mismatches were reported above
            self._diff(report, cls_b, api_b, cls_a, api_a,
                       check_common=False)
        for mod_s, fn_s, mod_v, fn_v in WATCHED_FUNCTION_PAIRS:
            scalar = functions.get((mod_s, fn_s))
            if scalar is None:
                continue        # scalar module not in the linted path set
            fast = functions.get((mod_v, fn_v))
            if fast is None:
                report(self.id, scalar["path"], scalar["line"], 0,
                       f"`{fn_s}` has no vectorized twin `{mod_v}.{fn_v}`; "
                       "the fastpath equivalence suite cannot cover it",
                       scalar["snippet"])
                continue
            scalar_req = tuple(p for p in scalar["required"]
                               if p not in _SCALAR_ONLY_PARAMS)
            fast_req = tuple(fast["required"])
            if scalar_req != fast_req:
                report(self.id, fast["path"], fast["line"], 0,
                       f"`{fn_v}` required parameters differ from the "
                       f"scalar golden model: {fn_v}{fast_req} vs "
                       f"{fn_s}{scalar_req}", fast["snippet"])
            if "engine" not in scalar["params"]:
                report(self.id, scalar["path"], scalar["line"], 0,
                       f"`{fn_s}` lacks the `engine=` selector; the "
                       f"vectorized twin `{fn_v}` is unreachable from the "
                       "measurement API", scalar["snippet"])

    def _diff(self, report, name_a: str, api_a: dict,
              name_b: str, api_b: dict, *, check_common: bool) -> None:
        """Findings for members of ``a`` that ``b`` lacks or mismatches.

        Anchored at the lagging side (``b``'s class line for missing
        members) so the finding points where the fix goes.
        """
        for member, info in sorted(api_a["members"].items()):
            if member in _BATCHED_ONLY_MEMBERS:
                continue
            other = api_b["members"].get(member)
            if other is None:
                report(self.id, api_b["path"], api_b["line"], 0,
                       f"{name_b} is missing public {info['kind']} "
                       f"`{member}` present on {name_a} "
                       f"({api_a['path']}:{info['line']}); the equivalence "
                       "suite cannot cover it",
                       f"class {name_b}")
                continue
            if not check_common:
                continue
            if other["kind"] != info["kind"]:
                report(self.id, api_b["path"], other["line"], 0,
                       f"`{member}` is a {other['kind']} on {name_b} but a "
                       f"{info['kind']} on {name_a}; callers cannot treat "
                       "the models interchangeably", other["snippet"])
            elif _strip_lane(other["required"]) != _strip_lane(
                    info["required"]):
                report(self.id, api_b["path"], other["line"], 0,
                       f"`{member}` required parameters differ: "
                       f"{name_b}{tuple(other['required'])} vs "
                       f"{name_a}{tuple(info['required'])}",
                       other["snippet"])
