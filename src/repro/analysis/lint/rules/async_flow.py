"""REP007 — flow-sensitive async-safety (the upgrade of REP002).

REP002 catches a ``with lock:`` whose body *syntactically* contains an
``await``.  This rule tracks the held-resource state along CFG paths
instead, so it also catches the shapes the syntactic check cannot see:

* ``lock.acquire()`` ... ``await`` ... ``lock.release()`` split across
  branches (the await is reachable on a path where the lock is held);
* an ``async with`` whose body spans awaits while an *outer* thread
  lock is still held;
* a blocking call (``time.sleep``, sync I/O) on a path where a thread
  lock is held inside a coroutine — every other task contending for
  that lock now waits out the blocking call too;
* a ``SharedMemory`` buffer opened in a coroutine and held across an
  ``await`` — the suspension can outlive the request (client gone,
  task cancelled) and the segment stays mapped.

State per path: which lock/SHM tags are held.  ``with`` enter/exit
steps, ``.acquire()``/``.release()`` and ``.close()``/``.unlink()``
calls move tags in and out; joins are unions (held on *some* path is a
finding).  The rule only analyses ``async def`` functions — sync
helpers hold locks across blocking calls legitimately.
"""

from __future__ import annotations

import ast

from repro.analysis.flow import (DataflowAnalysis, ENTER_WITH, EXIT_WITH,
                                 Env, STMT, Tag, TEST,
                                 step_assigned_names, step_expressions)
from repro.analysis.lint.context import FileContext, resolve_attribute
from repro.analysis.lint.rules import Rule

_LOCKISH = ("lock", "mutex", "semaphore", "condition")

_SANCTIONED_LOCKS = ("asyncio.Lock", "asyncio.Semaphore",
                     "asyncio.Condition", "asyncio.BoundedSemaphore")

_BLOCKING = {"time.sleep", "open", "io.open", "os.system",
             "subprocess.run", "subprocess.call", "subprocess.check_call",
             "subprocess.check_output", "subprocess.Popen",
             "socket.create_connection", "urllib.request.urlopen"}

_SHM = "SharedMemory"


def _lock_expr_name(expr: ast.AST, ctx: FileContext) -> str | None:
    """Dotted name of a thread-lock-ish expression, else None."""
    if isinstance(expr, ast.Call):
        resolved = ctx.resolve_call(expr)
        if resolved and resolved.startswith("asyncio."):
            return None
        expr = expr.func
    resolved = resolve_attribute(expr)
    if resolved is None:
        return None
    if any(resolved == s or resolved.endswith("." + s)
           for s in _SANCTIONED_LOCKS):
        return None
    terminal = resolved.rsplit(".", 1)[-1].lower()
    if any(word in terminal for word in _LOCKISH):
        return resolved
    return None


def _is_shm_call(call: ast.Call, ctx: FileContext) -> bool:
    target = ctx.resolve_call(call)
    return target is not None and (target == _SHM or
                                   target.endswith("." + _SHM))


class _HeldAnalysis(DataflowAnalysis):
    """Env of synthetic keys -> held lock/shm tags."""

    def __init__(self, cfg, ctx: FileContext, rule_id: str):
        super().__init__(cfg)
        self.ctx = ctx
        self.rule_id = rule_id
        self._reported: set[tuple[int, int, str]] = set()

    def entry_state(self) -> Env:
        return Env()

    def initial_state(self) -> Env:
        return Env()

    def join(self, a: Env, b: Env) -> Env:
        return a.join(b)

    # ------------------------------------------------------------ transfer
    def transfer_step(self, step, env: Env) -> Env:
        if step.kind == ENTER_WITH:
            expr = step.item.context_expr
            lock = None if step.is_async else _lock_expr_name(expr, self.ctx)
            if lock is not None:
                tag = Tag("lock", expr.lineno, expr.col_offset, detail=lock)
                return env.bind(f"@with:{expr.lineno}:{expr.col_offset}",
                                {tag})
            if isinstance(expr, ast.Call) and _is_shm_call(expr, self.ctx):
                tag = Tag("shm", expr.lineno, expr.col_offset)
                return env.bind(f"@with:{expr.lineno}:{expr.col_offset}",
                                {tag})
            return env
        if step.kind == EXIT_WITH:
            expr = step.item.context_expr
            return env.bind(f"@with:{expr.lineno}:{expr.col_offset}",
                            frozenset())
        node = step.node
        if step.kind == STMT and isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.Call) and \
                _is_shm_call(node.value, self.ctx):
            tag = Tag("shm", node.value.lineno, node.value.col_offset)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    env = env.bind(f"@shm:{target.id}", {tag})
            return env
        for call in (sub for sub in step_expressions(step)
                     if isinstance(sub, ast.Call)):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "acquire":
                lock = _lock_expr_name(func.value, self.ctx)
                if lock is not None:
                    tag = Tag("lock", call.lineno, call.col_offset,
                              detail=lock)
                    env = env.bind(f"@acq:{lock}", {tag})
            elif func.attr == "release":
                lock = _lock_expr_name(func.value, self.ctx)
                if lock is not None:
                    env = env.bind(f"@acq:{lock}", frozenset())
            elif func.attr in ("close", "unlink"):
                base = func.value
                if isinstance(base, ast.Name):
                    env = env.bind(f"@shm:{base.id}", frozenset())
        for name in step_assigned_names(step):
            env = env.bind(f"@shm:{name}", frozenset())
        return env

    # ------------------------------------------------------------ findings
    def _held(self, env: Env, kind: str) -> Tag | None:
        tags = sorted(tag for tag in env.tags() if tag.kind == kind)
        return tags[0] if tags else None

    def _flag(self, node: ast.AST, message: str) -> None:
        key = (node.lineno, node.col_offset, message[:24])
        if key not in self._reported:
            self._reported.add(key)
            self.ctx.report(self.rule_id, node, message)

    def visit_step(self, step, env: Env) -> None:
        # state *before* this step: a `with lock:` enter itself is fine
        lock = self._held(env, "lock")
        shm = self._held(env, "shm")
        if lock is None and shm is None:
            return
        awaits = [sub for sub in step_expressions(step)
                  if isinstance(sub, ast.Await)]
        if step.kind == ENTER_WITH and step.is_async:
            awaits.append(step.item.context_expr)
        if step.kind == TEST and isinstance(step.node, ast.AsyncFor):
            awaits.append(step.node.iter)
        for point in awaits:
            if lock is not None:
                self._flag(point,
                           f"thread lock `{lock.detail}` (held since line "
                           f"{lock.line}) is held across `await`; the loop "
                           "can starve the releasing task — use "
                           "asyncio.Lock or release before awaiting")
            if shm is not None:
                self._flag(point,
                           "SharedMemory buffer opened at line "
                           f"{shm.line} is held across `await`; a "
                           "cancelled/stalled task keeps the segment "
                           "mapped — close before suspending")
        if lock is None:
            return
        for call in (sub for sub in step_expressions(step)
                     if isinstance(sub, ast.Call)):
            target = self.ctx.resolve_call(call)
            if target in _BLOCKING:
                self._flag(call,
                           f"blocking call `{target}()` on a path holding "
                           f"thread lock `{lock.detail}` (line {lock.line}) "
                           "in async code; contending tasks wait out the "
                           "block too")


class AsyncFlowRule(Rule):
    id = "REP007"
    name = "async-flow-safety"
    summary = ("flow-sensitive: no thread lock or SharedMemory buffer "
               "held across `await`, no blocking call while a lock is "
               "held in async code")
    mode = "flow"

    def check_function(self, func, cfg, ctx: FileContext) -> None:
        if not isinstance(func, ast.AsyncFunctionDef):
            return
        _HeldAnalysis(cfg, ctx, self.id).run()
