"""REP006 — rng-stream discipline (flow-sensitive).

:func:`repro.rng.generator_for` hands out *keyed* streams: the (seed,
key) pair fully determines every draw, which is what makes measurement
runs bit-reproducible and cache keys honest.  A keyed stream stays
disciplined only while its draws happen in-order, in-process:

* **reseeding** (``gen.bit_generator.seed(...)``, assigning
  ``gen.bit_generator.state``) silently replaces the keyed stream with
  an ambient one — the (seed, key) in the cache key no longer describes
  the draws;
* **ambient forking** (``gen.spawn(...)``, ``gen.jumped(...)``) derives
  child streams whose identity depends on how many times the parent was
  forked, i.e. on call order — derive independent streams with another
  ``generator_for(seed, *key)`` instead;
* **escaping into a worker or closure** (passed to ``Thread``/
  ``Process``/executor ``submit``/``map``, or captured by a nested
  ``def``/``lambda``) lets draws interleave nondeterministically across
  threads, or pickles generator state across processes.

The rule runs a small taint analysis over each function's CFG: names
bound to ``generator_for`` results carry a tag through assignments and
joins, and the checks above fire wherever a tagged name reaches them on
*some* path.
"""

from __future__ import annotations

import ast

from repro.analysis.flow import (DataflowAnalysis, Env, STMT, Tag,
                                 step_assigned_names, step_expressions)
from repro.analysis.lint.context import FileContext, resolve_attribute
from repro.analysis.lint.rules import Rule

#: Calls whose result is a keyed stream.
_CREATORS = frozenset({"repro.rng.generator_for"})

#: Methods that fork a stream ambiently.
_FORKERS = frozenset({"spawn", "jumped"})

#: Call targets that move an argument into another thread/process.
_SPAWNERS = frozenset({"threading.Thread", "multiprocessing.Process",
                       "concurrent.futures.ProcessPoolExecutor",
                       "concurrent.futures.ThreadPoolExecutor"})
_SPAWN_METHODS = ("submit", "map", "map_async", "apply_async",
                  "starmap", "starmap_async")


def _base_name(node: ast.AST) -> str | None:
    """Innermost Name of an attribute chain (``gen.bit_generator.state``
    -> ``gen``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class _StreamAnalysis(DataflowAnalysis):
    def __init__(self, cfg, ctx: FileContext, rule_id: str):
        super().__init__(cfg)
        self.ctx = ctx
        self.rule_id = rule_id
        self._reported: set[tuple[int, int, str]] = set()

    # ------------------------------------------------------------- lattice
    def entry_state(self) -> Env:
        return Env()

    def initial_state(self) -> Env:
        return Env()

    def join(self, a: Env, b: Env) -> Env:
        return a.join(b)

    def _value_tags(self, value: ast.AST, env: Env) -> frozenset[Tag]:
        if isinstance(value, ast.Name):
            return env.get(value.id)
        if isinstance(value, ast.Call):
            target = self.ctx.resolve_call(value)
            if target in _CREATORS:
                return frozenset({Tag("rng", value.lineno,
                                      value.col_offset)})
        return frozenset()

    def transfer_step(self, step, env: Env) -> Env:
        node = step.node
        if step.kind == STMT and isinstance(node, ast.Assign):
            tags = self._value_tags(node.value, env)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    env = env.bind(target.id, tags)
                else:
                    for name in step_assigned_names(step):
                        env = env.bind(name, frozenset())
            return env
        if step.kind == STMT and isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name) and node.value is not None:
            return env.bind(node.target.id,
                            self._value_tags(node.value, env))
        for name in step_assigned_names(step):
            env = env.bind(name, frozenset())
        return env

    # ------------------------------------------------------------ findings
    def _flag(self, node: ast.AST, what: str) -> None:
        key = (node.lineno, node.col_offset, what[:20])
        if key not in self._reported:
            self._reported.add(key)
            self.ctx.report(self.rule_id, node, what)

    def visit_step(self, step, env: Env) -> None:
        node = step.node
        # `gen.bit_generator.state = ...` — state replacement
        if step.kind == STMT and isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute) and \
                        target.attr in ("state", "seed"):
                    base = _base_name(target)
                    if base and env.get(base):
                        self._flag(node,
                                   f"keyed stream `{base}` is reseeded by "
                                   f"assigning `.{target.attr}`; the (seed, "
                                   "key) identity no longer describes its "
                                   "draws — derive a fresh stream with "
                                   "repro.rng.generator_for")
        for expr in step_expressions(step):
            if isinstance(expr, ast.Call):
                self._visit_call(expr, env)
        # closure capture: a nested def/lambda defined while a stream is
        # live, referencing a tagged name
        if step.kind == STMT and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_capture(node, node.name, env)
        elif step.kind == STMT:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Lambda):
                    self._check_capture(sub, "<lambda>", env)

    def _visit_call(self, call: ast.Call, env: Env) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            base = _base_name(func)
            tagged = base is not None and bool(env.get(base))
            if tagged and func.attr in _FORKERS:
                self._flag(call,
                           f"keyed stream `{base}` forked ambiently via "
                           f"`.{func.attr}()`; child-stream identity then "
                           "depends on call order — derive independent "
                           "streams with repro.rng.generator_for(seed, "
                           "*key)")
                return
            if tagged and func.attr == "seed":
                self._flag(call,
                           f"keyed stream `{base}` is reseeded via "
                           f"`.seed()`; the (seed, key) identity no longer "
                           "describes its draws")
                return
        target = self.ctx.resolve_call(call)
        spawnish = target in _SPAWNERS or (
            isinstance(func, ast.Attribute) and func.attr in _SPAWN_METHODS)
        if not spawnish:
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Name) and env.get(sub.id):
                    self._flag(call,
                               f"keyed stream `{sub.id}` escapes into a "
                               "spawned worker; cross-thread draws "
                               "interleave nondeterministically — pass "
                               "(seed, key) and rebuild the stream with "
                               "generator_for in the worker")
                    return

    def _check_capture(self, scope_node: ast.AST, label: str,
                       env: Env) -> None:
        inner_bound = {sub.id for sub in ast.walk(scope_node)
                       if isinstance(sub, ast.Name)
                       and isinstance(sub.ctx, ast.Store)}
        args = getattr(scope_node, "args", None)
        if args is not None:
            inner_bound |= {a.arg for a in
                           args.posonlyargs + args.args + args.kwonlyargs}
            if args.vararg:
                inner_bound.add(args.vararg.arg)
            if args.kwarg:
                inner_bound.add(args.kwarg.arg)
        for sub in ast.walk(scope_node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load) \
                    and sub.id not in inner_bound and env.get(sub.id):
                self._flag(scope_node,
                           f"keyed stream `{sub.id}` captured by closure "
                           f"`{label}`; if the closure outlives this call "
                           "or runs concurrently, its draws detach from "
                           "the (seed, key) identity — pass (seed, key) "
                           "and rebuild inside")
                return


class RngStreamRule(Rule):
    id = "REP006"
    name = "rng-stream-discipline"
    summary = ("keyed repro.rng streams must not be reseeded, forked via "
               ".spawn()/.jumped(), or escape into workers/closures")
    mode = "flow"

    def check_function(self, func, cfg, ctx: FileContext) -> None:
        _StreamAnalysis(cfg, ctx, self.id).run()
