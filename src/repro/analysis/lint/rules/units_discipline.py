"""REP003 — unit discipline: no magic unit constants, no mixed-unit sums.

The paper reports latency in *core clock cycles* and bandwidth in
vendor GB/s (10**9); the repo keeps those straight through
:mod:`repro.units`.  Two checks:

* **magic constants** — literal spellings of the unit constants
  (``1e9``, ``1024*1024``, ``1 << 30``, ...) outside ``repro.units``
  itself; use ``units.GB`` / ``units.MIB`` / ``units.GIGA`` so a grep
  for unit conversions finds every site;
* **suffix mixing** — ``+``/``-`` between names carrying different unit
  suffixes (``*_cycles``, ``*_ns``, ``*_gbps``, ``*_s``, ``*_bytes``,
  ``*_hz``) with no ``units.py`` conversion in between; adding cycles
  to nanoseconds is never meaningful.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import FileContext, resolve_attribute
from repro.analysis.lint.rules import Rule

#: value -> the units.py name that spells it.
MAGIC_VALUES = {
    10 ** 9: "units.GIGA (vendor GB / Hz-per-GHz)",
    10 ** 6: "units.MEGA",
    1024 ** 2: "units.MIB",
    1024 ** 3: "units.GIB",
}

#: suffix -> unit family; longest suffix wins (``_ns`` before ``_s``).
_SUFFIX_FAMILIES = (("_cycles", "cycles"), ("_gbps", "GB/s"),
                    ("_bytes", "bytes"), ("_seconds", "seconds"),
                    ("_ns", "ns"), ("_hz", "Hz"), ("_s", "seconds"))

_CONST_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Pow, ast.LShift)


def const_value(node: ast.AST):
    """Value of a constant arithmetic expression, else None.

    Only +,-,*,**,<< over numeric literals — enough to recognise every
    spelling of a unit constant (``1024 * 1024``, ``1 << 30``,
    ``10 ** 9``) without evaluating arbitrary code.
    """
    if isinstance(node, ast.Constant):
        value = node.value
        return value if isinstance(value, (int, float)) else None
    if isinstance(node, ast.BinOp) and isinstance(node.op, _CONST_OPS):
        left = const_value(node.left)
        right = const_value(node.right)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Pow):
                return left ** right if abs(right) < 64 else None
            return left << right if right < 64 else None
        except (TypeError, ValueError, OverflowError):
            return None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        value = const_value(node.operand)
        return None if value is None else -value
    return None


def unit_family(node: ast.AST) -> str | None:
    """Unit family of a Name/Attribute by its ``_suffix``, else None."""
    dotted = resolve_attribute(node)
    if dotted is None:
        return None
    terminal = dotted.rsplit(".", 1)[-1]
    for suffix, family in _SUFFIX_FAMILIES:
        if terminal.endswith(suffix):
            return family
    return None


class UnitDisciplineRule(Rule):
    id = "REP003"
    name = "unit-discipline"
    summary = ("no bare 1e9/1024**2-style unit constants (use repro.units); "
               "no +/- across *_cycles / *_ns / *_gbps suffixes")
    interests = ("Constant", "BinOp")

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if not ctx.in_rule_scope(self.id):
            return
        if isinstance(node, ast.BinOp):
            self._check_mixed_suffixes(node, ctx)
        self._check_magic(node, ctx)

    def _check_magic(self, node: ast.AST, ctx: FileContext) -> None:
        value = const_value(node)
        if value is None or value not in MAGIC_VALUES:
            return
        # report only the outermost constant expression: if the parent is
        # itself a flaggable constant (1024*1024*1024), let it report.
        parent = getattr(node, "_repro_parent", None)
        if parent is not None and const_value(parent) in MAGIC_VALUES:
            return
        ctx.report(self.id, node,
                   f"magic unit constant `{ctx.source_segment(node)}`; "
                   f"use {MAGIC_VALUES[value]} from repro.units")

    def _check_mixed_suffixes(self, node: ast.BinOp, ctx: FileContext) -> None:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        left = unit_family(node.left)
        right = unit_family(node.right)
        if left is None or right is None or left == right:
            return
        op = "+" if isinstance(node.op, ast.Add) else "-"
        ctx.report(self.id, node,
                   f"mixed-unit arithmetic: `{left}` {op} `{right}` "
                   "without a repro.units conversion")
