"""REP001 — determinism: simulation code must not read ambient entropy.

The paper's measurements are reproduced with *deterministic* per-key
noise streams (:mod:`repro.rng`); any path through the simulated device
that touches the process-global RNG or the wall clock breaks
bit-reproducibility between runs — exactly the measurement-discipline
slip microbenchmark papers blame for divergent results.  Scope comes
from ``[tool.repro.lint.scopes.REP001]`` (default: the simulation
packages, with ``repro.rng`` — which *implements* the discipline —
exempt); serving, exec, and benchmark timing code legitimately reads
clocks.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.rules import Rule

_WALL_CLOCK = {"time.time", "time.time_ns", "time.monotonic",
               "time.monotonic_ns", "time.perf_counter",
               "time.perf_counter_ns", "time.process_time",
               "datetime.datetime.now", "datetime.datetime.utcnow",
               "datetime.datetime.today", "datetime.date.today"}

_NP_SANCTIONED = {"numpy.random.Generator", "numpy.random.SeedSequence",
                  "numpy.random.PCG64", "numpy.random.Philox"}


class DeterminismRule(Rule):
    id = "REP001"
    name = "determinism"
    summary = ("no ambient random.* / unseeded numpy RNG / wall-clock "
               "reads in simulation packages; use repro.rng")
    interests = ("Call",)

    def check(self, node: ast.Call, ctx: FileContext) -> None:
        if not ctx.in_rule_scope(self.id):
            return
        target = ctx.resolve_call(node)
        if target is None:
            return
        if target in _WALL_CLOCK:
            ctx.report(self.id, node,
                       f"wall-clock read `{target}()` in simulation code; "
                       "simulated time is `cycles` — convert via "
                       "repro.units if seconds are needed")
        elif target == "random" or target.startswith("random."):
            ctx.report(self.id, node,
                       f"ambient stdlib RNG `{target}()`; derive a keyed "
                       "generator via repro.rng.generator_for(seed, ...)")
        elif target.startswith("numpy.random."):
            if target in _NP_SANCTIONED:
                return
            if target == "numpy.random.default_rng" and node.args:
                return          # explicitly seeded: reproducible
            what = ("unseeded `numpy.random.default_rng()`"
                    if target == "numpy.random.default_rng"
                    else f"global-state `{target}()`")
            ctx.report(self.id, node,
                       f"{what}; derive a keyed generator via "
                       "repro.rng.generator_for(seed, ...)")
