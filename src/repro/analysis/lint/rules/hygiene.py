"""REP005 — hazard hygiene: no swallowed failures, no mutable defaults.

On simulation hot paths a swallowed exception turns a modelling bug
into silently-wrong published numbers; a mutable default argument leaks
state between supposedly independent experiment runs.  Checks:

* bare ``except:`` anywhere;
* ``except Exception/BaseException`` whose body only ``pass``es — the
  failure vanishes (re-raising, logging, or returning a sentinel all
  count as handling);
* mutable default arguments (``def f(x=[])`` / ``={}`` / ``=set()``).
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import FileContext
from repro.analysis.lint.rules import Rule

_BROAD = {"Exception", "BaseException"}

_MUTABLE_CALLS = {"list", "dict", "set", "collections.defaultdict",
                  "collections.deque", "collections.OrderedDict"}


def _is_swallow(body: list[ast.stmt]) -> bool:
    return all(isinstance(stmt, ast.Pass)
               or (isinstance(stmt, ast.Expr)
                   and isinstance(stmt.value, ast.Constant))
               for stmt in body)


def _mutable_default(node: ast.AST, ctx: FileContext) -> str | None:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return type(node).__name__.lower().replace("comp", " comprehension")
    if isinstance(node, ast.Call):
        target = ctx.resolve_call(node)
        if target in _MUTABLE_CALLS:
            return f"{target}()"
    return None


class HazardHygieneRule(Rule):
    id = "REP005"
    name = "hazard-hygiene"
    summary = ("no bare/swallowing `except`, no mutable default "
               "arguments")
    interests = ("ExceptHandler", "FunctionDef", "AsyncFunctionDef")

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.ExceptHandler):
            self._check_handler(node, ctx)
        else:
            self._check_defaults(node, ctx)

    def _check_handler(self, node: ast.ExceptHandler, ctx: FileContext):
        if node.type is None:
            ctx.report(self.id, node,
                       "bare `except:` catches SystemExit/KeyboardInterrupt "
                       "too; name the exception type")
            return
        names = []
        for expr in (node.type.elts if isinstance(node.type, ast.Tuple)
                     else [node.type]):
            if isinstance(expr, ast.Name):
                names.append(expr.id)
        if any(n in _BROAD for n in names) and _is_swallow(node.body):
            ctx.report(self.id, node,
                       f"`except {'/'.join(names)}` swallows the failure "
                       "(body is only pass); on a simulation path this "
                       "turns bugs into wrong numbers — handle or re-raise")

    def _check_defaults(self, node, ctx: FileContext) -> None:
        args = node.args
        defaults = list(zip((args.posonlyargs + args.args)[::-1],
                            args.defaults[::-1]))
        defaults += [(a, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)
                     if d is not None]
        for arg, default in defaults:
            what = _mutable_default(default, ctx)
            if what is not None:
                ctx.report(self.id, default,
                           f"mutable default `{arg.arg}={what}` is shared "
                           "across calls; default to None and allocate "
                           "inside the function")
