"""Rule base class and the registry.

A rule declares the AST node-type names it cares about (``interests``);
the engine's single visitor pass dispatches each node to every enabled
rule interested in its type.  Cross-file rules (REP004) accumulate state
during the walk and emit findings from :meth:`Rule.finalize`, which runs
once after every file has been visited.

Adding a rule: subclass :class:`Rule`, set ``id``/``name``/``summary``/
``interests``, implement ``check``, and append an instance to
:data:`ALL_RULES` (DESIGN.md §10 walks through an example).
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import FileContext


class Rule:
    """One invariant checked over the AST."""

    id: str = "REP000"
    name: str = "abstract"
    summary: str = ""
    #: AST node class names this rule wants to see (e.g. ``("Call",)``).
    interests: tuple[str, ...] = ()

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        """Inspect one node; call ``ctx.report(self.id, node, msg)``."""

    def finalize(self, report) -> None:
        """Emit cross-file findings; ``report(rule_id, path, line, col,
        message, snippet)``.  Called once per lint run."""


def build_rules(select: tuple[str, ...] | None = None) -> list[Rule]:
    """Fresh rule instances (rules are stateful across one run only)."""
    from repro.analysis.lint.rules.async_safety import AsyncSafetyRule
    from repro.analysis.lint.rules.determinism import DeterminismRule
    from repro.analysis.lint.rules.hygiene import HazardHygieneRule
    from repro.analysis.lint.rules.parity import GoldenModelParityRule
    from repro.analysis.lint.rules.units_discipline import UnitDisciplineRule

    rules: list[Rule] = [DeterminismRule(), AsyncSafetyRule(),
                         UnitDisciplineRule(), GoldenModelParityRule(),
                         HazardHygieneRule()]
    if select:
        wanted = {r.upper() for r in select}
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"available: {', '.join(rule.id for rule in rules)}")
        rules = [rule for rule in rules if rule.id in wanted]
    return rules


def rule_table() -> list[dict]:
    """Id/name/summary for docs and ``lint --format json`` metadata."""
    return [{"id": rule.id, "name": rule.name, "summary": rule.summary}
            for rule in build_rules()]
