"""Rule base class and the registry.

A rule declares the AST node-type names it cares about (``interests``);
the engine's single visitor pass dispatches each node to every enabled
rule interested in its type.  Rules with ``mode = "flow"`` additionally
implement :meth:`Rule.check_function`: the engine hands them every
function definition together with its control-flow graph
(:mod:`repro.analysis.flow`), built once per function and shared.

Cross-file rules record JSON-serializable *facts* during the walk
(``ctx.add_fact(rule_id, {...})``) and emit findings from
:meth:`Rule.finalize`, which runs once after every file's facts are
merged — the facts model is what lets per-file analysis run in worker
processes and land in the incremental cache while cross-file checks
stay exact.

Adding a rule: subclass :class:`Rule`, set ``id``/``name``/``summary``/
``interests`` (and ``mode``), implement ``check`` and/or
``check_function``, and register it in :func:`build_rules`
(DESIGN.md §10 and §15 walk through examples).
"""

from __future__ import annotations

import ast

from repro.analysis.lint.context import FileContext

#: Informational rules render as SARIF ``note`` instead of ``warning``.
NOTE_RULES = frozenset({"REP010"})


class Rule:
    """One invariant checked over the AST (or its CFGs)."""

    id: str = "REP000"
    name: str = "abstract"
    summary: str = ""
    #: ``"syntactic"`` rules see nodes via ``check``; ``"flow"`` rules
    #: additionally see every function + CFG via ``check_function``.
    mode: str = "syntactic"
    #: AST node class names this rule wants to see (e.g. ``("Call",)``).
    interests: tuple[str, ...] = ()

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        """Inspect one node; call ``ctx.report(self.id, node, msg)``."""

    def check_function(self, func: ast.AST, cfg, ctx: FileContext) -> None:
        """Flow-mode hook: one (async) function and its CFG."""

    def finalize(self, facts: list[dict], report) -> None:
        """Emit cross-file findings from this rule's merged facts;
        ``report(rule_id, path, line, col, message, snippet)``.  Called
        once per lint run."""


def build_rules(select: tuple[str, ...] | None = None) -> list[Rule]:
    """Fresh rule instances (rules are stateless across files; facts
    accumulate on the context, not the rule)."""
    from repro.analysis.lint.rules.async_flow import AsyncFlowRule
    from repro.analysis.lint.rules.async_safety import AsyncSafetyRule
    from repro.analysis.lint.rules.determinism import DeterminismRule
    from repro.analysis.lint.rules.fingerprint import (
        FingerprintCompletenessRule)
    from repro.analysis.lint.rules.hygiene import HazardHygieneRule
    from repro.analysis.lint.rules.lifecycle import ResourceLifecycleRule
    from repro.analysis.lint.rules.parity import GoldenModelParityRule
    from repro.analysis.lint.rules.rng_stream import RngStreamRule
    from repro.analysis.lint.rules.units_discipline import UnitDisciplineRule

    rules: list[Rule] = [DeterminismRule(), AsyncSafetyRule(),
                         UnitDisciplineRule(), GoldenModelParityRule(),
                         HazardHygieneRule(), RngStreamRule(),
                         AsyncFlowRule(), ResourceLifecycleRule(),
                         FingerprintCompletenessRule()]
    if select:
        wanted = {r.upper() for r in select}
        unknown = wanted - {rule.id for rule in rules} - {"REP010"}
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"available: {', '.join(rule.id for rule in rules)}, "
                "REP010")
        rules = [rule for rule in rules if rule.id in wanted]
    return rules


def rule_table() -> list[dict]:
    """Id/name/summary for docs, ``lint --format json`` metadata, and
    the SARIF driver rules array."""
    rows = [{"id": rule.id, "name": rule.name, "summary": rule.summary}
            for rule in build_rules()]
    rows.append({"id": "REP010", "name": "unused-noqa",
                 "summary": "informational: a `# repro: noqa[...]` "
                            "comment that suppresses nothing"})
    return rows
