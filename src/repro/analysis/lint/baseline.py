"""Baseline files: grandfathered findings that stay quiet.

A baseline is a small checked-in JSON document mapping finding
fingerprints to a human-readable reminder of what they are.  Fixing a
violation removes its fingerprint from the next ``--write-baseline``
run; *new* violations are never in the baseline, so CI fails on them
immediately while pre-existing debt is paid down deliberately.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.lint.findings import Finding
from repro.errors import ReproError

BASELINE_VERSION = 1

#: Conventional baseline filename, looked up at the lint root.
DEFAULT_BASELINE = "lint-baseline.json"


class BaselineError(ReproError):
    """The baseline file is unreadable or structurally wrong."""


def load_baseline(path: str | Path) -> set[str]:
    """Fingerprint set from a baseline file."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise BaselineError(f"baseline file not found: {path}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(document, dict) or "baseline" not in document:
        raise BaselineError(
            f"baseline {path} must be an object with a 'baseline' key")
    entries = document["baseline"]
    if not isinstance(entries, dict):
        raise BaselineError(f"baseline {path}: 'baseline' must be an object "
                            "mapping fingerprints to descriptions")
    return set(entries)


def prune_baseline(path: str | Path,
                   live_fingerprints: set[str] | frozenset[str]) -> list[str]:
    """Drop baseline entries no longer produced by the current tree.

    Returns the stale fingerprints that were removed (empty when the
    baseline was already tight).  CI runs ``repro lint
    --prune-baseline`` and fails when anything came back: a stale entry
    means a grandfathered violation was fixed but its suppression
    lingered, ready to mask a future regression at the same site.
    """
    path = Path(path)
    fingerprints = load_baseline(path)       # validates the document
    document = json.loads(path.read_text(encoding="utf-8"))
    stale = sorted(fingerprints - set(live_fingerprints))
    if not stale:
        return []
    entries = document["baseline"]
    for fingerprint in stale:
        entries.pop(fingerprint, None)
    document["baseline"] = dict(sorted(entries.items()))
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return stale


def write_baseline(path: str | Path, findings: list[Finding]) -> int:
    """Write the current findings as the new baseline; returns count."""
    entries = {f.fingerprint: f"{f.rule} {f.path}:{f.line} {f.message}"
               for f in findings}
    document = {"version": BASELINE_VERSION,
                "comment": "grandfathered repro-lint findings; regenerate "
                           "with `repro lint --write-baseline` after "
                           "deliberate changes",
                "baseline": dict(sorted(entries.items()))}
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=False)
                          + "\n", encoding="utf-8")
    return len(entries)
