"""AST-based invariant linter for the reproduction's house rules.

``repro lint`` enforces the invariants the paper's methodology demands
but the type system cannot: bit-reproducible measurements (REP001),
an unblocked serving event loop (REP002), cycles/ns/GB-s unit
discipline (REP003), golden-model API parity (REP004), and hazard
hygiene on simulation paths (REP005).  Stdlib ``ast`` only — no new
dependencies.

Programmatic use::

    from repro.analysis.lint import run_lint, load_baseline
    result = run_lint(["src"], root=repo_root,
                      baseline=load_baseline("lint-baseline.json"))
    assert result.exit_code == 0, render_text(result)

Inline suppression: ``# repro: noqa[REP002]`` (or bare ``# repro:
noqa`` for all rules) on the flagged line.
"""

from repro.analysis.lint.baseline import (BaselineError, DEFAULT_BASELINE,
                                          load_baseline, write_baseline)
from repro.analysis.lint.engine import (LintResult, iter_python_files,
                                        run_lint)
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.reporting import render_json, render_text
from repro.analysis.lint.rules import Rule, build_rules, rule_table

__all__ = [
    "Finding", "LintResult", "Rule",
    "run_lint", "iter_python_files", "build_rules", "rule_table",
    "load_baseline", "write_baseline", "BaselineError", "DEFAULT_BASELINE",
    "render_text", "render_json",
]
