"""AST-based invariant linter for the reproduction's house rules.

``repro lint`` enforces the invariants the paper's methodology demands
but the type system cannot: bit-reproducible measurements (REP001),
an unblocked serving event loop (REP002 syntactic, REP007
flow-sensitive), cycles/ns/GB-s unit discipline (REP003), golden-model
API parity (REP004), hazard hygiene on simulation paths (REP005),
keyed-RNG stream discipline (REP006), SHM/descriptor lifecycle
(REP008), and engine-fingerprint completeness for ResultCache keys
(REP009).  Stdlib ``ast`` only — no new dependencies; the
flow-sensitive rules run on :mod:`repro.analysis.flow` CFGs.

Programmatic use::

    from repro.analysis.lint import run_lint, load_baseline
    result = run_lint(["src"], root=repo_root, jobs=4,
                      cache_dir=".lint-cache",
                      baseline=load_baseline("lint-baseline.json"))
    assert result.exit_code == 0, render_text(result)

Inline suppression: ``# repro: noqa[REP002,REP007]`` (or bare
``# repro: noqa`` for all rules) on the flagged line; suppressions
that stop matching anything are themselves reported as REP010.
Per-rule module scopes come from ``[tool.repro.lint.scopes]`` in
``pyproject.toml`` (:mod:`repro.analysis.lint.config`).
"""

from repro.analysis.lint.baseline import (BaselineError, DEFAULT_BASELINE,
                                          load_baseline, prune_baseline,
                                          write_baseline)
from repro.analysis.lint.config import LintConfig, load_config
from repro.analysis.lint.engine import (LintResult, iter_python_files,
                                        run_lint)
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.reporting import (render_json, render_sarif,
                                           render_text)
from repro.analysis.lint.rules import Rule, build_rules, rule_table

__all__ = [
    "Finding", "LintResult", "Rule", "LintConfig", "load_config",
    "run_lint", "iter_python_files", "build_rules", "rule_table",
    "load_baseline", "write_baseline", "prune_baseline",
    "BaselineError", "DEFAULT_BASELINE",
    "render_text", "render_json", "render_sarif",
]
