"""Series-system bottleneck analysis (paper Section VI-B, Implication 5).

"The maximum throughput of K sub-systems in series is the minimum of the
subsystem throughput" [Hill].  The cores, the NoC (terminal/interface
bandwidth), and the memory system form such a series; this module computes
which stage binds, which is exactly the paper's argument for why interface
bandwidth — not bisection bandwidth — determines whether the NoC walls off
memory bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class BottleneckReport:
    """Throughput of a series system and the stage that limits it."""
    stages: tuple                # (name, throughput) ordered pairs
    throughput: float
    bottleneck: str

    def headroom(self, stage: str) -> float:
        """Spare throughput of a stage relative to the system bottleneck."""
        for name, value in self.stages:
            if name == stage:
                return value - self.throughput
        raise ReproError(f"unknown stage {stage!r}")


def series_throughput(stages: dict) -> BottleneckReport:
    """Max throughput of named subsystems connected in series."""
    if not stages:
        raise ReproError("need at least one stage")
    for name, value in stages.items():
        if value <= 0:
            raise ReproError(f"stage {name!r} must have positive throughput")
    bottleneck = min(stages, key=stages.get)
    return BottleneckReport(
        stages=tuple(stages.items()),
        throughput=stages[bottleneck],
        bottleneck=bottleneck,
    )
