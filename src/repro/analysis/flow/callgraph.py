"""Module-level call / alias graph.

Best-effort and purely syntactic (no imports are executed): for every
function defined in a set of modules, record

* its dotted id (``module.qualname``),
* the alias-resolved dotted names it *calls*,
* the alias-resolved dotted names it *returns* (when a ``return``
  statement's value is a bare name/attribute chain — enough to spot
  factory helpers like ``def _shared_memory(): return
  shared_memory.SharedMemory``).

Flow rules use the same-module slice (``module_returns``) to resolve
``cls = _factory(); cls(...)`` patterns; the cross-file REP009 rule and
external tooling can walk the full graph.  Everything here is plain
data (dicts/strings) so per-file slices serialize into the lint
engine's incremental cache.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["FunctionNode", "CallGraph", "build_module_graph",
           "module_returns"]


def _resolve(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Dotted name of a Name/Attribute chain, alias-expanded."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    dotted = ".".join(reversed(parts))
    head, _, tail = dotted.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return dotted
    return f"{origin}.{tail}" if tail else origin


@dataclass
class FunctionNode:
    """One function in the graph (plain-data, cache-serializable)."""

    id: str                                   # "module.qualname"
    module: str
    qualname: str
    line: int
    calls: list[str] = field(default_factory=list)
    returns: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {"id": self.id, "module": self.module,
                "qualname": self.qualname, "line": self.line,
                "calls": self.calls, "returns": self.returns}

    @classmethod
    def from_json(cls, doc: dict) -> "FunctionNode":
        return cls(id=doc["id"], module=doc["module"],
                   qualname=doc["qualname"], line=doc["line"],
                   calls=list(doc["calls"]), returns=list(doc["returns"]))


class CallGraph:
    """Merged function nodes across modules, indexed by dotted id."""

    def __init__(self) -> None:
        self.nodes: dict[str, FunctionNode] = {}

    def add(self, node: FunctionNode) -> None:
        self.nodes[node.id] = node

    def callees(self, function_id: str) -> list[str]:
        node = self.nodes.get(function_id)
        return list(node.calls) if node else []

    def callers(self, function_id: str) -> list[str]:
        return sorted(node.id for node in self.nodes.values()
                      if function_id in node.calls)

    def __len__(self) -> int:
        return len(self.nodes)


def build_module_graph(module: str, tree: ast.AST,
                       aliases: dict[str, str]) -> list[FunctionNode]:
    """Function nodes for one module's AST (nested defs included)."""
    nodes: list[FunctionNode] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                fn = FunctionNode(
                    id=f"{module}.{qualname}" if module else qualname,
                    module=module, qualname=qualname, line=child.lineno)
                seen_calls: set[str] = set()
                for sub in ast.walk(child):
                    if isinstance(sub, ast.Call):
                        target = _resolve(sub.func, aliases)
                        if target and target not in seen_calls:
                            seen_calls.add(target)
                            fn.calls.append(target)
                    elif isinstance(sub, ast.Return) and \
                            sub.value is not None:
                        returned = _resolve(sub.value, aliases)
                        if returned and returned not in fn.returns:
                            fn.returns.append(returned)
                nodes.append(fn)
                visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return nodes


def module_returns(tree: ast.AST, aliases: dict[str, str]) -> dict[str, list[str]]:
    """``local function name -> dotted names it returns`` for one module.

    Only module-level, single-segment function names are indexed — this
    is the slice flow rules use to see through same-file factory
    helpers (``cls = _shared_memory()``).
    """
    out: dict[str, list[str]] = {}
    for node in build_module_graph("", tree, aliases):
        if "." not in node.qualname and node.returns:
            out[node.qualname] = node.returns
    return out
