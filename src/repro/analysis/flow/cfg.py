"""Intraprocedural control-flow graphs over stdlib ``ast``.

One :class:`CFG` per function (or module body): basic blocks of
*steps*, edges for every construct the lint rules reason about —
``if``/``elif``/``else``, ``while``/``for`` (including their ``else``
clauses, ``break``/``continue``), ``try``/``except``/``else``/
``finally`` (including ``return`` inside ``finally``-guarded bodies),
``with``/``async with``, and ``match``.  Async functions build the same
graph; suspension points (``await``) stay *inside* steps, where
transfer functions find them by walking the step's expression tree.

Steps rather than raw statements: a compound statement contributes only
its *header effect* to the block it starts in (the test of an ``if``,
the context-manager entry of a ``with``) while its body lives in
successor blocks.  ``with`` additionally contributes an explicit
``exit_with`` step at the end of its body, so scope-shaped state (a
held lock, an open buffer) is a plain transfer over steps instead of a
lexical re-discovery.

Exception edges are the usual lint-level over-approximation: every
block inside a ``try`` region gets an edge to each of its handlers and
to its ``finally``, carrying the block's *entry* state as well as its
exit state (an exception may fire before any step ran).  ``finally``
blocks are built once and fan out to every continuation any path
requested — spurious path combinations are possible and the shipped
analyses are designed to stay sound under them (must-analyses join by
intersection, may-analyses by union).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Step", "BasicBlock", "CFG", "build_cfg", "iter_functions"]

#: Step kinds.
STMT = "stmt"              # a simple statement, fully contained in the block
TEST = "test"              # the test/iterable evaluation of a compound header
ENTER_WITH = "enter_with"  # one context manager entered (step.item set)
EXIT_WITH = "exit_with"    # the matching scope exit
EXCEPT = "except"          # an except handler binds (step.node is the handler)


@dataclass(frozen=True)
class Step:
    """One atomic unit of a basic block."""

    node: ast.AST              # anchor: source location + expressions
    kind: str = STMT
    item: ast.withitem | None = None   # for enter_with/exit_with
    #: True when this enter/exit is from an ``async with``.
    is_async: bool = False

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass
class BasicBlock:
    index: int
    steps: list[Step] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def add_succ(self, other: int) -> None:
        if other not in self.succs:
            self.succs.append(other)


class CFG:
    """Basic blocks + distinguished entry / normal exit / raise exit."""

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        #: edges taken only when an exception fires; a solver propagates
        #: the joined entry-and-exit state along these (the exception
        #: may fire before any step of the source block ran)
        self.exc_edges: set[tuple[int, int]] = set()
        self.entry = self._new().index
        self.exit = self._new().index        # returns and fallthrough
        self.raise_exit = self._new().index  # uncaught raise paths

    def _new(self) -> BasicBlock:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def edge(self, src: int, dst: int) -> None:
        self.blocks[src].add_succ(dst)
        if src not in self.blocks[dst].preds:
            self.blocks[dst].preds.append(src)

    def block(self, index: int) -> BasicBlock:
        return self.blocks[index]

    def __len__(self) -> int:
        return len(self.blocks)

    # ------------------------------------------------------------- helpers
    def reachable(self) -> set[int]:
        """Block indices reachable from entry."""
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            stack.extend(self.blocks[index].succs)
        return seen

    def rpo(self) -> list[int]:
        """Reverse postorder from entry (deterministic)."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(index: int) -> None:
            seen.add(index)
            for succ in self.blocks[index].succs:
                if succ not in seen:
                    visit(succ)
            order.append(index)

        visit(self.entry)
        return list(reversed(order))


class _LoopFrame:
    """break/continue targets of the innermost loop."""

    def __init__(self, head: int, after: int):
        self.head = head
        self.after = after


class _TryFrame:
    """Handlers + finally of an enclosing ``try`` statement."""

    def __init__(self, handlers: list[int], final: int | None):
        self.handlers = handlers      # handler entry blocks
        self.final = final            # finally entry block, if any
        #: jump targets (return/break/continue) parked at the finally;
        #: connected from the finally's *exit* once its body is built
        self.pending: set[int] = set()


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.loops: list[_LoopFrame] = []
        self.tries: list[_TryFrame] = []

    # ------------------------------------------------------------ plumbing
    def _fresh(self) -> int:
        return self.cfg._new().index

    def _register(self, block: int) -> None:
        """Route an exception raised in ``block`` to enclosing handlers.

        Only the innermost frame's handlers (plus every enclosing
        ``finally``) are linked: a handler that re-raises reaches outer
        frames through its own block's registration.
        """
        linked = False
        for frame in reversed(self.tries):
            for handler in frame.handlers:
                self.cfg.edge(block, handler)
                self.cfg.exc_edges.add((block, handler))
                linked = True
            if frame.final is not None:
                self.cfg.edge(block, frame.final)
                self.cfg.exc_edges.add((block, frame.final))
                linked = True
            if linked:
                return
        self.cfg.edge(block, self.cfg.raise_exit)
        self.cfg.exc_edges.add((block, self.cfg.raise_exit))

    def _terminate(self, block: int, target: int) -> None:
        """Jump (return/break/continue) honouring enclosing finallys.

        The jump is parked at the innermost enclosing ``finally``: once
        that finally's body is built, its exit re-issues the jump (which
        may park again at the next finally out — nested finallys chain
        naturally).
        """
        for frame in reversed(self.tries):
            if frame.final is not None:
                self.cfg.edge(block, frame.final)
                frame.pending.add(target)
                return
        self.cfg.edge(block, target)

    # ---------------------------------------------------------- statements
    def build(self, body: list[ast.stmt]) -> CFG:
        first = self._fresh()
        self.cfg.edge(self.cfg.entry, first)
        last = self._stmts(body, first)
        if last is not None:
            self.cfg.edge(last, self.cfg.exit)
        return self.cfg

    def _stmts(self, stmts: list[ast.stmt], current: int) -> int | None:
        """Process a suite; returns the fallthrough block (None if every
        path terminated)."""
        for stmt in stmts:
            if current is None:
                # unreachable code after return/raise/break: still build
                # blocks for it so rules can inspect, but leave it
                # disconnected from the live graph
                current = self._fresh()
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, stmt: ast.stmt, current: int) -> int | None:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar):
            return self._try(stmt, current)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, current)
        if isinstance(stmt, ast.Return):
            cfg.block(current).steps.append(Step(stmt))
            self._terminate(current, cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            cfg.block(current).steps.append(Step(stmt))
            self._register(current)
            return None
        if isinstance(stmt, ast.Break):
            cfg.block(current).steps.append(Step(stmt))
            if self.loops:
                self._terminate(current, self.loops[-1].after)
            return None
        if isinstance(stmt, ast.Continue):
            cfg.block(current).steps.append(Step(stmt))
            if self.loops:
                self._terminate(current, self.loops[-1].head)
            return None
        # simple statement (incl. nested FunctionDef/ClassDef headers,
        # whose bodies are separate scopes and separate CFGs)
        cfg.block(current).steps.append(Step(stmt))
        return current

    # ------------------------------------------------------------ branches
    def _if(self, stmt: ast.If, current: int) -> int | None:
        cfg = self.cfg
        cfg.block(current).steps.append(Step(stmt, kind=TEST))
        then_entry = self._fresh()
        cfg.edge(current, then_entry)
        then_exit = self._stmts(stmt.body, then_entry)
        if stmt.orelse:
            else_entry = self._fresh()
            cfg.edge(current, else_entry)
            else_exit = self._stmts(stmt.orelse, else_entry)
        else:
            else_exit = current          # false edge falls through
        if then_exit is None and else_exit is None:
            return None
        after = self._fresh()
        if then_exit is not None:
            cfg.edge(then_exit, after)
        if else_exit is not None:
            cfg.edge(else_exit, after)
        return after

    def _while(self, stmt: ast.While, current: int) -> int | None:
        cfg = self.cfg
        head = self._fresh()
        cfg.edge(current, head)
        cfg.block(head).steps.append(Step(stmt, kind=TEST))
        after = self._fresh()
        body_entry = self._fresh()
        cfg.edge(head, body_entry)
        self.loops.append(_LoopFrame(head, after))
        body_exit = self._stmts(stmt.body, body_entry)
        self.loops.pop()
        if body_exit is not None:
            cfg.edge(body_exit, head)
        infinite = (isinstance(stmt.test, ast.Constant)
                    and bool(stmt.test.value))
        if not infinite:
            if stmt.orelse:
                else_entry = self._fresh()
                cfg.edge(head, else_entry)
                else_exit = self._stmts(stmt.orelse, else_entry)
                if else_exit is not None:
                    cfg.edge(else_exit, after)
            else:
                cfg.edge(head, after)
        # an infinite loop reaches `after` only via break edges
        return after if cfg.block(after).preds else None

    def _for(self, stmt: ast.For | ast.AsyncFor, current: int) -> int | None:
        cfg = self.cfg
        head = self._fresh()
        cfg.edge(current, head)
        cfg.block(head).steps.append(Step(stmt, kind=TEST))
        after = self._fresh()
        body_entry = self._fresh()
        cfg.edge(head, body_entry)
        self.loops.append(_LoopFrame(head, after))
        body_exit = self._stmts(stmt.body, body_entry)
        self.loops.pop()
        if body_exit is not None:
            cfg.edge(body_exit, head)
        if stmt.orelse:
            else_entry = self._fresh()
            cfg.edge(head, else_entry)
            else_exit = self._stmts(stmt.orelse, else_entry)
            if else_exit is not None:
                cfg.edge(else_exit, after)
        else:
            cfg.edge(head, after)
        return after

    # ---------------------------------------------------------------- with
    def _with(self, stmt: ast.With | ast.AsyncWith,
              current: int) -> int | None:
        cfg = self.cfg
        is_async = isinstance(stmt, ast.AsyncWith)
        for item in stmt.items:
            cfg.block(current).steps.append(
                Step(stmt, kind=ENTER_WITH, item=item, is_async=is_async))
        body_entry = self._fresh()
        cfg.edge(current, body_entry)
        body_exit = self._stmts(stmt.body, body_entry)
        if body_exit is None:
            return None
        for item in reversed(stmt.items):
            cfg.block(body_exit).steps.append(
                Step(stmt, kind=EXIT_WITH, item=item, is_async=is_async))
        return body_exit

    # ----------------------------------------------------------------- try
    def _try(self, stmt, current: int) -> int | None:
        cfg = self.cfg
        final_entry = self._fresh() if stmt.finalbody else None
        handler_entries = []
        for handler in stmt.handlers:
            entry = self._fresh()
            cfg.block(entry).steps.append(Step(handler, kind=EXCEPT))
            handler_entries.append(entry)

        frame = _TryFrame(handler_entries, final_entry)
        self.tries.append(frame)
        body_entry = self._fresh()
        cfg.edge(current, body_entry)
        first_body_block = len(cfg.blocks) - 1
        # an exception can fire before the first step of the body runs
        for entry in handler_entries:
            cfg.edge(body_entry, entry)
            cfg.exc_edges.add((body_entry, entry))
        if final_entry is not None:
            cfg.edge(body_entry, final_entry)
            cfg.exc_edges.add((body_entry, final_entry))
        body_exit = self._stmts(stmt.body, body_entry)
        last_body_block = len(cfg.blocks) - 1
        # ... or between any two steps: route every body block out
        for index in range(first_body_block, last_body_block + 1):
            for entry in handler_entries:
                cfg.edge(index, entry)
                cfg.exc_edges.add((index, entry))
            if final_entry is not None and not handler_entries:
                cfg.edge(index, final_entry)
                cfg.exc_edges.add((index, final_entry))
        self.tries.pop()

        # else clause runs only when the body fell through; exceptions
        # raised in it are *not* caught by this try's handlers
        if stmt.orelse and body_exit is not None:
            else_entry = self._fresh()
            cfg.edge(body_exit, else_entry)
            body_exit = self._stmts(stmt.orelse, else_entry)

        # handler bodies (their own exceptions go to *outer* frames)
        handler_exits: list[int] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            self._register(entry)        # re-raise path out of the handler
            exit_block = self._stmts(handler.body, entry)
            if exit_block is not None:
                handler_exits.append(exit_block)

        if final_entry is not None:
            if body_exit is not None:
                cfg.edge(body_exit, final_entry)
            for exit_block in handler_exits:
                cfg.edge(exit_block, final_entry)
            final_exit = self._stmts(stmt.finalbody, final_entry)
            if final_exit is None:
                return None
            # re-issue the jumps (returns/breaks) that parked here; with
            # the frame popped this chains to the next finally out
            for target in sorted(frame.pending):
                self._terminate(final_exit, target)
            # the finally also re-raises / propagates terminations; give
            # it the uncaught-raise continuation as well
            self._register(final_exit)
            after = self._fresh()
            cfg.edge(final_exit, after)
            return after

        if body_exit is None and not handler_exits:
            return None
        after = self._fresh()
        if body_exit is not None:
            cfg.edge(body_exit, after)
        for exit_block in handler_exits:
            cfg.edge(exit_block, after)
        return after

    # --------------------------------------------------------------- match
    def _match(self, stmt: ast.Match, current: int) -> int | None:
        cfg = self.cfg
        cfg.block(current).steps.append(Step(stmt, kind=TEST))
        exits: list[int] = []
        fell_through = True
        for case in stmt.cases:
            case_entry = self._fresh()
            cfg.edge(current, case_entry)
            case_exit = self._stmts(case.body, case_entry)
            if case_exit is not None:
                exits.append(case_exit)
            if (isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None
                    and case.guard is None):
                fell_through = False      # wildcard case: always taken
        if fell_through:
            exits.append(current)
        if not exits:
            return None
        after = self._fresh()
        for exit_block in exits:
            cfg.edge(exit_block, after)
        return after


def build_cfg(node: ast.AST) -> CFG:
    """CFG of a function body (or any statement list / module).

    Accepts a ``FunctionDef`` / ``AsyncFunctionDef`` / ``Module`` node,
    or a plain list of statements.
    """
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
        body = node.body
    elif isinstance(node, list):
        body = node
    else:
        raise TypeError(f"cannot build a CFG for {type(node).__name__}")
    return _Builder().build(body)


def iter_functions(tree: ast.AST):
    """Yield every (async) function definition in ``tree``, including
    nested ones, in source order."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
