"""Flow-sensitive program analysis for the lint engine.

Three layers, all over stdlib ``ast`` (no new dependencies):

* :mod:`repro.analysis.flow.cfg` — intraprocedural control-flow graphs
  (branches, loops with ``else``, ``try``/``except``/``finally`` with
  ``return`` routing, ``with``/``async with`` scope steps, ``match``);
* :mod:`repro.analysis.flow.solver` — a deterministic worklist solver
  (:class:`DataflowAnalysis`) with a post-fixpoint visiting pass where
  lint rules fire findings;
* :mod:`repro.analysis.flow.lattice` — the shared taint-style abstract
  domain (:class:`Tag` values, :class:`Env` environments) plus
  scope-aware helpers for extracting defs/uses from CFG steps;
* :mod:`repro.analysis.flow.callgraph` — a best-effort module-level
  call / alias graph (who calls what, which factories return what).

The flow-sensitive lint rules (REP006–REP008) are thin clients of
these; see DESIGN.md §15 for the architecture walk-through.
"""

from repro.analysis.flow.callgraph import (CallGraph, FunctionNode,
                                           build_module_graph,
                                           module_returns)
from repro.analysis.flow.cfg import (BasicBlock, CFG, ENTER_WITH, EXCEPT,
                                     EXIT_WITH, STMT, Step, TEST,
                                     build_cfg, iter_functions)
from repro.analysis.flow.lattice import (Env, Tag, assigned_names,
                                         name_uses, step_assigned_names,
                                         step_calls, step_expressions,
                                         walk_expressions)
from repro.analysis.flow.solver import DataflowAnalysis, solve_forward

__all__ = [
    "CFG", "BasicBlock", "Step", "build_cfg", "iter_functions",
    "STMT", "TEST", "ENTER_WITH", "EXIT_WITH", "EXCEPT",
    "DataflowAnalysis", "solve_forward",
    "Env", "Tag", "assigned_names", "name_uses", "walk_expressions",
    "step_expressions", "step_assigned_names", "step_calls",
    "CallGraph", "FunctionNode", "build_module_graph", "module_returns",
]
