"""Worklist dataflow solver over :class:`~repro.analysis.flow.cfg.CFG`.

A client subclasses :class:`DataflowAnalysis` (or calls
:func:`solve_forward` directly) and supplies the lattice operations:

* ``entry_state()`` — state at the CFG entry;
* ``initial_state()`` — the pre-join identity for every other block
  (⊤ for must-analyses joined by intersection, ⊥ for may-analyses
  joined by union);
* ``join(a, b)`` — the lattice join of two predecessor states;
* ``transfer_step(step, state)`` — state after one block step.

The solver iterates blocks to a fixpoint.  **Determinism:** states must
be value-comparable (``==``) and transfers monotone; under those
conditions the fixpoint is unique, so the solution is independent of
worklist iteration order.  ``order`` exists to let tests *prove* that
(hypothesis shuffles it and asserts equal fixpoints) — production
callers leave it as the default reverse postorder, which converges
fastest.

After the fixpoint, :meth:`DataflowAnalysis.run` replays each reachable
block from its entry state and calls ``visit_step`` with the state *in
force at that step* — that is where lint rules fire their findings.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.flow.cfg import CFG, Step

__all__ = ["DataflowAnalysis", "solve_forward"]

#: Fixpoint iteration ceiling: (blocks * steps) is bounded for any real
#: function; this guards against a non-monotone client transfer.
MAX_PASSES = 10_000


def solve_forward(cfg: CFG, *, entry_state, initial_state, join,
                  transfer_block, order=None) -> list:
    """Fixpoint entry-states for every block of ``cfg``.

    ``transfer_block(block, state) -> state`` maps a block's entry
    state to its exit state.  Returns a list indexed by block number;
    unreachable blocks keep ``initial_state()``.
    """
    states = [initial_state() for _ in cfg.blocks]
    states[cfg.entry] = entry_state()
    reachable = cfg.reachable()
    seed = order if order is not None else cfg.rpo()
    worklist = deque(index for index in seed if index in reachable)
    queued = set(worklist)
    passes = 0
    while worklist:
        passes += 1
        if passes > MAX_PASSES:
            raise RuntimeError("dataflow solver failed to converge "
                               "(non-monotone transfer function?)")
        index = worklist.popleft()
        queued.discard(index)
        block = cfg.block(index)
        out_state = transfer_block(block, states[index])
        for succ in block.succs:
            if succ not in reachable:
                continue
            if (index, succ) in cfg.exc_edges:
                # the exception may fire before any step of this block
                # ran: the handler sees entry state as well as exit
                flowed = join(states[index], out_state)
            else:
                flowed = out_state
            merged = join(states[succ], flowed)
            if merged != states[succ]:
                states[succ] = merged
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    return states


class DataflowAnalysis:
    """Forward dataflow analysis with a post-fixpoint visiting pass."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg

    # ------------------------------------------------- lattice (override)
    def entry_state(self):
        raise NotImplementedError

    def initial_state(self):
        raise NotImplementedError

    def join(self, a, b):
        raise NotImplementedError

    def transfer_step(self, step: Step, state):
        raise NotImplementedError

    def visit_step(self, step: Step, state) -> None:
        """Called during :meth:`run`'s replay with the state in force
        *before* ``step`` executes."""

    # ------------------------------------------------------------- driving
    def _transfer_block(self, block, state):
        for step in block.steps:
            state = self.transfer_step(step, state)
        return state

    def solve(self, order=None) -> list:
        return solve_forward(
            self.cfg, entry_state=self.entry_state,
            initial_state=self.initial_state, join=self.join,
            transfer_block=self._transfer_block, order=order)

    def run(self) -> list:
        """Solve, then replay reachable blocks calling ``visit_step``;
        returns the fixpoint states."""
        states = self.solve()
        for index in sorted(self.cfg.reachable()):
            state = states[index]
            for step in self.cfg.block(index).steps:
                self.visit_step(step, state)
                state = self.transfer_step(step, state)
        return states

    # -------------------------------------------------------------- final
    def exit_state(self, states):
        """The joined state at the normal (non-raise) function exit."""
        reachable = self.cfg.reachable()
        state = self.initial_state()
        for pred in self.cfg.block(self.cfg.exit).preds:
            if pred not in reachable:
                continue
            block = self.cfg.block(pred)
            state = self.join(state, self._transfer_block(
                block, states[pred]))
        return state
