"""Small abstract-value lattice + environment for taint-style rules.

The flow-sensitive lint rules all track the same shape of fact: *which
local names are bound to which interesting values* (a keyed RNG stream,
an open SharedMemory handle, an acquired lock), where each interesting
value is identified by its creation site.  This module provides:

* :class:`Tag` — an abstract value: a ``kind`` (``"rng"``, ``"shm"``,
  ``"lock"``, ...) plus the creation site (line/col), hashable and
  totally ordered so joined states are deterministic;
* :class:`Env` — an immutable mapping ``name -> frozenset[Tag]`` with
  the pointwise union join (may-analysis: a name *may* hold a value);
* helpers to extract assignment targets and name uses from statements
  without leaking bindings out of comprehension or nested-function
  scopes (comprehensions have their own scope in Python 3; a ``for x in
  ...`` inside a listcomp must not count as defining ``x`` in the
  enclosing function).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

__all__ = ["Tag", "Env", "assigned_names", "name_uses",
           "walk_expressions", "step_expressions",
           "step_assigned_names", "step_calls"]


@dataclass(frozen=True, order=True)
class Tag:
    """An abstract value identified by kind and creation site."""

    kind: str
    line: int
    col: int = 0
    detail: str = ""

    def __repr__(self) -> str:          # compact in solver dumps
        extra = f":{self.detail}" if self.detail else ""
        return f"<{self.kind}@{self.line}{extra}>"


class Env:
    """Immutable ``name -> frozenset[Tag]`` with pointwise-union join."""

    __slots__ = ("_map",)

    def __init__(self, mapping: dict[str, frozenset[Tag]] | None = None):
        self._map: dict[str, frozenset[Tag]] = dict(mapping or {})

    # ------------------------------------------------------------- access
    def get(self, name: str) -> frozenset[Tag]:
        return self._map.get(name, frozenset())

    def names_of(self, tag: Tag) -> list[str]:
        return sorted(name for name, tags in self._map.items()
                      if tag in tags)

    def tags(self) -> frozenset[Tag]:
        out: set[Tag] = set()
        for tags in self._map.values():
            out |= tags
        return frozenset(out)

    def items(self):
        return self._map.items()

    # ------------------------------------------------------------ updates
    def bind(self, name: str, tags: Iterable[Tag]) -> "Env":
        """Strong update: ``name`` now holds exactly ``tags``."""
        mapping = dict(self._map)
        tags = frozenset(tags)
        if tags:
            mapping[name] = tags
        else:
            mapping.pop(name, None)
        return Env(mapping)

    def drop_tag(self, tag: Tag) -> "Env":
        """Remove ``tag`` from every binding (e.g. handle closed)."""
        mapping = {}
        for name, tags in self._map.items():
            kept = tags - {tag}
            if kept:
                mapping[name] = kept
        return Env(mapping)

    # ------------------------------------------------------------ lattice
    def join(self, other: "Env") -> "Env":
        mapping = dict(self._map)
        for name, tags in other._map.items():
            mapping[name] = mapping.get(name, frozenset()) | tags
        return Env(mapping)

    def __eq__(self, other) -> bool:
        return isinstance(other, Env) and self._map == other._map

    def __hash__(self) -> int:
        return hash(frozenset(self._map.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={sorted(v)}"
                          for k, v in sorted(self._map.items()))
        return f"Env({inner})"


# ---------------------------------------------------------------- scoping

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
                ast.ClassDef)


_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp,
                   ast.GeneratorExp)


def walk_expressions(node: ast.AST, *, into_scopes: bool = False):
    """Yield ``node`` and its descendants, stopping at scope boundaries.

    Nested functions, lambdas, comprehensions, and class bodies are
    separate Python scopes; a dataflow transfer for the enclosing
    function must not treat their internals as executing inline (a
    comprehension's loop variable does not bind in the function, a
    nested function's body does not run at definition time).  The parts
    that *do* evaluate in the enclosing scope are still walked: default
    argument values, decorators, and a comprehension's outermost
    iterable.
    """
    yield node
    for child in ast.iter_child_nodes(node):
        if not into_scopes and isinstance(child, _SCOPE_NODES):
            args = getattr(child, "args", None)
            if args is not None and not isinstance(args, list):
                for default in list(args.defaults) + \
                        [d for d in args.kw_defaults if d is not None]:
                    yield from walk_expressions(default)
            for decorator in getattr(child, "decorator_list", []):
                yield from walk_expressions(decorator)
            if isinstance(child, _COMPREHENSIONS) and child.generators:
                yield from walk_expressions(child.generators[0].iter)
            continue
        yield from walk_expressions(child, into_scopes=into_scopes)


def assigned_names(stmt: ast.AST) -> list[str]:
    """Plain-name targets a statement (re)binds in the current scope.

    Tuple unpacking is flattened; attribute/subscript stores are not
    name bindings; comprehension targets and nested-function internals
    are excluded (their scope is not ours).  A nested ``def f`` *does*
    bind ``f``.
    """
    names: list[str] = []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return [stmt.name]
    if isinstance(stmt, ast.Import):
        return [a.asname or a.name.split(".")[0] for a in stmt.names]
    if isinstance(stmt, ast.ImportFrom):
        return [a.asname or a.name for a in stmt.names if a.name != "*"]
    for node in walk_expressions(stmt):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.append(node.id)
    return names


def name_uses(node: ast.AST) -> list[ast.Name]:
    """``Name`` loads in ``node``, scope-aware (see
    :func:`walk_expressions`)."""
    return [sub for sub in walk_expressions(node)
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)]


# ----------------------------------------------------------- step helpers

def step_expressions(step):
    """The AST actually *evaluated at* a CFG step.

    A compound statement's step covers only its header (the ``if``/
    ``while`` test, the ``for`` iterable + target, the context-manager
    expression), never its body — the body lives in successor blocks.
    Simple statements are walked whole; nested scopes are skipped per
    :func:`walk_expressions`.
    """
    from repro.analysis.flow.cfg import (ENTER_WITH, EXCEPT, EXIT_WITH,
                                         STMT, TEST)
    node = step.node
    if step.kind == TEST:
        if isinstance(node, (ast.If, ast.While)):
            yield from walk_expressions(node.test)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            yield from walk_expressions(node.iter)
            yield from walk_expressions(node.target)
        elif isinstance(node, ast.Match):
            yield from walk_expressions(node.subject)
        return
    if step.kind == ENTER_WITH:
        yield from walk_expressions(step.item.context_expr)
        if step.item.optional_vars is not None:
            yield from walk_expressions(step.item.optional_vars)
        return
    if step.kind == EXIT_WITH:
        return
    if step.kind == EXCEPT:
        if node.type is not None:
            yield from walk_expressions(node.type)
        return
    if step.kind == STMT and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # definition headers only: decorators and defaults evaluate now
        for decorator in node.decorator_list:
            yield from walk_expressions(decorator)
        args = getattr(node, "args", None)
        if args is not None:
            for default in list(args.defaults) + \
                    [d for d in args.kw_defaults if d is not None]:
                yield from walk_expressions(default)
        return
    yield from walk_expressions(node)


def step_assigned_names(step) -> list[str]:
    """Names a CFG step binds in the current scope."""
    from repro.analysis.flow.cfg import (ENTER_WITH, EXCEPT, STMT, TEST)
    node = step.node
    if step.kind == TEST:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return [sub.id for sub in ast.walk(node.target)
                    if isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Store)]
        if isinstance(node, (ast.If, ast.While)):
            # walrus in the test binds
            return [sub.target.id for sub in walk_expressions(node.test)
                    if isinstance(sub, ast.NamedExpr)
                    and isinstance(sub.target, ast.Name)]
        return []
    if step.kind == ENTER_WITH:
        target = step.item.optional_vars
        if target is None:
            return []
        return [sub.id for sub in ast.walk(target)
                if isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Store)]
    if step.kind == EXCEPT:
        return [node.name] if node.name else []
    if step.kind == STMT:
        return assigned_names(node)
    return []


def step_calls(step) -> list[ast.Call]:
    """Call expressions evaluated at a CFG step, in source order."""
    return [sub for sub in step_expressions(step)
            if isinstance(sub, ast.Call)]
