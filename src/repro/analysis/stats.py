"""Pearson correlation and distribution summaries (paper Eq. 1, Fig 2/6).

The paper uses Pearson correlation between per-SM latency vectors to
fingerprint SM placement (Observation 4).  We implement Eq. 1 directly and
provide the heatmap/clustering helpers the placement analysis builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


def pearson(x, y) -> float:
    """Pearson correlation coefficient (paper Equation 1)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ReproError("pearson needs two equal-length 1-D samples")
    if x.size < 2:
        raise ReproError("pearson needs at least two samples")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt((xc ** 2).sum()) * np.sqrt((yc ** 2).sum())
    if denom == 0:
        raise ReproError("pearson undefined for constant samples")
    return float((xc * yc).sum() / denom)


def pearson_matrix(rows: np.ndarray) -> np.ndarray:
    """Pairwise Pearson correlation of the rows of a matrix (Fig 6)."""
    rows = np.asarray(rows, dtype=float)
    if rows.ndim != 2 or rows.shape[0] < 2:
        raise ReproError("pearson_matrix needs a 2-D matrix with >=2 rows")
    if (rows.std(axis=1) == 0).any():
        raise ReproError("pearson undefined for constant rows")
    return np.corrcoef(rows)


@dataclass(frozen=True)
class Summary:
    """Distribution summary used throughout EXPERIMENTS.md."""
    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @property
    def spread(self) -> float:
        return self.maximum - self.minimum


def summarize(values) -> Summary:
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ReproError("cannot summarise an empty sample")
    return Summary(mean=float(arr.mean()), std=float(arr.std()),
                   minimum=float(arr.min()), maximum=float(arr.max()),
                   count=int(arr.size))


def histogram(values, bins: int = 20) -> tuple:
    """(counts, edges) histogram with validation (Fig 2/9/13)."""
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ReproError("cannot histogram an empty sample")
    if bins <= 0:
        raise ReproError("bins must be positive")
    counts, edges = np.histogram(arr, bins=bins)
    return counts, edges


def modality(values, bins: int = 12, min_prominence: float = 0.25) -> int:
    """Count the prominent modes of a sample (Fig 13: bimodal vs unimodal).

    Counts maximal histogram runs that rise above ``min_prominence`` of
    the tallest bin, separated by valleys that drop below half that
    threshold.  The coarse default binning absorbs within-mode spread
    (e.g. the A100 far-partition mode spans a few GB/s) while still
    separating the A100's near/far modes from the H100's single peak.
    """
    counts, _ = histogram(values, bins)
    threshold = min_prominence * counts.max()
    valley = threshold / 2.0
    modes = 0
    above = False
    for count in counts:
        if not above and count >= threshold:
            modes += 1
            above = True
        elif above and count < valley:
            above = False
    return max(modes, 1)
