"""Statistics and performance-analysis helpers."""

from repro.analysis.stats import (pearson, pearson_matrix, summarize,
                                  histogram, modality, Summary)
from repro.analysis.littles_law import (required_outstanding_bytes,
                                        achievable_bandwidth_gbps,
                                        sms_to_saturate)
from repro.analysis.bottleneck import series_throughput, BottleneckReport
from repro.analysis.network_wall import (PriorWorkConfig, PRIOR_WORK,
                                         interface_bandwidth_gbps,
                                         classify_network_wall)

__all__ = [
    "pearson", "pearson_matrix", "summarize", "histogram", "Summary",
    "required_outstanding_bytes", "achievable_bandwidth_gbps",
    "sms_to_saturate",
    "series_throughput", "BottleneckReport",
    "PriorWorkConfig", "PRIOR_WORK", "interface_bandwidth_gbps",
    "classify_network_wall",
]
