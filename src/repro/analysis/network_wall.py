"""The "network wall" survey (paper Figure 22, Implication 4/5).

The paper surveys simulation-based prior work and plots each study's
memory bandwidth against its NoC->MEM *interface* bandwidth,

    BW_noc-mem = f_noc * w * C

(f_noc: NoC clock, w: channel width bytes, C: number of memory
partitions).  Points below the ``BW_noc-mem = BW_mem`` line have walled
off their own memory system: the NoC interface, not DRAM, limits
memory-intensive workloads, so conclusions about NoC optimisations on
such baselines overstate their benefit.

``PRIOR_WORK`` encodes the simulator configurations of the studies the
paper surveys, as modelled from each paper's methodology/configuration
tables (GPGPU-Sim-era setups; values are the published configuration
parameters, reconstructed to the precision the papers report).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class PriorWorkConfig:
    """One simulation-based study's NoC/memory provisioning."""
    name: str
    reference: str            # paper citation tag
    noc_clock_ghz: float
    channel_width_bytes: int
    num_mps: int
    mem_bandwidth_gbps: float

    @property
    def interface_bandwidth_gbps(self) -> float:
        return interface_bandwidth_gbps(self.noc_clock_ghz,
                                        self.channel_width_bytes,
                                        self.num_mps)

    @property
    def below_wall(self) -> bool:
        """True when the NoC interface walls off memory bandwidth."""
        return self.interface_bandwidth_gbps < self.mem_bandwidth_gbps


def interface_bandwidth_gbps(noc_clock_ghz: float, channel_width_bytes: int,
                             num_mps: int) -> float:
    """``BW_noc-mem = f_noc * w * C`` in GB/s (paper Section VI-C)."""
    if noc_clock_ghz <= 0 or channel_width_bytes <= 0 or num_mps <= 0:
        raise ReproError("interface bandwidth parameters must be positive")
    return noc_clock_ghz * channel_width_bytes * num_mps


#: Simulator configurations of the prior work surveyed in Fig 22.
PRIOR_WORK = (
    PriorWorkConfig("CCWS", "[14]", 0.70, 32, 8, 179.2),
    PriorWorkConfig("Mascar", "[15]", 0.70, 16, 6, 179.2),
    PriorWorkConfig("iPAWS", "[17]", 0.70, 16, 8, 179.2),
    PriorWorkConfig("Throughput-effective NoC", "[28]", 0.60, 16, 8, 128.0),
    PriorWorkConfig("Packet pump", "[29]", 1.00, 16, 8, 179.2),
    PriorWorkConfig("BW-efficient NoC", "[30]", 0.70, 16, 8, 140.0),
    PriorWorkConfig("Cost-effective NoC", "[31]", 0.60, 16, 6, 128.0),
    PriorWorkConfig("Conflict-free NoC", "[32]", 1.00, 32, 8, 179.2),
    PriorWorkConfig("WarpPool", "[58]", 0.70, 32, 8, 179.2),
    PriorWorkConfig("Adaptive cache mgmt", "[59]", 0.70, 16, 6, 179.2),
)


def classify_network_wall(configs=PRIOR_WORK) -> dict:
    """Split studies into wall-limited and memory-limited groups."""
    configs = tuple(configs)
    if not configs:
        raise ReproError("no configurations to classify")
    walled = tuple(c for c in configs if c.below_wall)
    healthy = tuple(c for c in configs if not c.below_wall)
    return {"walled": walled, "memory_bound": healthy,
            "walled_fraction": len(walled) / len(configs)}
