"""Singleflight coalescing and admission control for the event loop.

Both classes are asyncio-native and rely on the loop's cooperative
scheduling for atomicity: checking for an existing flight, registering a
new one, and taking an admission slot are all synchronous operations, so
no two requests can interleave inside them.

:class:`Singleflight` — N concurrent requests for the same content key
share one computation.  The leader registers a future under the key
*before* its first await, runs the computation, and resolves the future;
followers that arrive while the key is registered just await it.  An
exception resolves the flight too (all waiters see it) and is *not*
cached, so the next request retries.

:class:`AdmissionController` — a bounded in-flight budget with fast
rejection.  ``try_acquire`` never blocks: the caller either gets a slot
or an immediate ``False`` (a 429 in the server), which keeps the queue
of admitted work bounded and the rejection latency flat under overload.
``drain`` is the graceful-shutdown hook: it resolves once every admitted
slot has been released.
"""

from __future__ import annotations

import asyncio

from repro.errors import ConfigurationError


class Singleflight:
    """Per-key coalescing of concurrent identical computations."""

    def __init__(self):
        self._flights: dict[str, asyncio.Future] = {}

    @property
    def inflight(self) -> int:
        return len(self._flights)

    def leader_for(self, key: str) -> asyncio.Future | None:
        """The in-progress flight for ``key``, if any (None otherwise)."""
        return self._flights.get(key)

    async def run(self, key: str, factory) -> tuple:
        """``(value, led)`` — run ``factory()`` or join the flight for key.

        ``led`` is True for the caller whose ``factory`` actually ran.
        """
        existing = self._flights.get(key)
        if existing is not None:
            # shield: one cancelled follower must not kill the shared
            # computation other waiters (and the leader) depend on
            return await asyncio.shield(existing), False
        future = asyncio.get_running_loop().create_future()
        self._flights[key] = future
        try:
            value = factory()
            if asyncio.iscoroutine(value):
                value = await value
        except BaseException as exc:
            if not future.cancelled():
                future.set_exception(exc)
                future.exception()      # mark retrieved: no GC warning
            raise
        else:
            if not future.cancelled():
                future.set_result(value)
            return value, True
        finally:
            self._flights.pop(key, None)


class AdmissionController:
    """Bounded in-flight slots with non-blocking acquire and drain."""

    def __init__(self, limit: int):
        if limit < 1:
            raise ConfigurationError(
                f"admission limit must be >= 1, got {limit}")
        self.limit = limit
        self.active = 0
        self.peak = 0
        self._idle = asyncio.Event()
        self._idle.set()

    def try_acquire(self) -> bool:
        """Take a slot if one is free; never blocks."""
        if self.active >= self.limit:
            return False
        self.active += 1
        self.peak = max(self.peak, self.active)
        self._idle.clear()
        return True

    def release(self) -> None:
        if self.active <= 0:
            raise ConfigurationError("release() without acquire()")
        self.active -= 1
        if self.active == 0:
            self._idle.set()

    async def drain(self) -> None:
        """Resolve once no admitted work remains in flight."""
        await self._idle.wait()
