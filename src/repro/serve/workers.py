"""Sharded process-pool worker tier behind the serve front-end.

The single-process serve tier tops out at one core: every cold
computation funnels through one ``SweepRunner`` pool owned by one
event loop.  :class:`WorkerPool` replaces that funnel with N
long-lived worker *processes*, each owning a shard of the key space:

* **Consistent-hash sharding.**  Requests are routed by their
  engine-fingerprinted cache key (:func:`repro.exec.cache.cache_key`)
  over a :class:`HashRing` with virtual nodes, so one key always lands
  on one worker (per-shard warm caches, no duplicated cold work across
  workers) and removing a worker only reassigns *its* keys — the other
  shards keep their assignments, which is what makes rolling restarts
  cheap.
* **Shared result cache.**  Every worker writes the content-addressed
  on-disk :class:`~repro.exec.cache.ResultCache` directly (the same
  directory the front-end reads its hot path from), so a result
  computed by any worker is a cache hit for every future request no
  matter which process serves it.
* **Pickle-free transport.**  A worker serializes its result to
  canonical JSON exactly once; payloads above the shm threshold travel
  as a :class:`~repro.serve.shm.ShmRef` (name + size + digest) through
  the queue while the bytes move through ``multiprocessing.shared_memory``
  — the front-end splices them into the response envelope without
  re-serializing.
* **Lifecycle.**  A monitor thread detects crashed workers, requeues
  their in-flight jobs onto live shards, and respawns replacements;
  :meth:`WorkerPool.restart_worker` drains one worker gracefully
  (pending jobs finish, then the process exits) and
  :meth:`WorkerPool.rolling_restart` walks the whole pool one worker
  at a time — under load, with no client-visible failures.  Per-worker
  counters roll up into ``/metricz`` via :meth:`WorkerPool.stats`.

Workers are started with the ``spawn`` context: a fresh interpreter
per worker avoids forking the server's threaded, event-loop-owning
process, and makes a worker's warm state exactly reproducible (it is
rebuilt from imports, never inherited).
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ReproError
from repro.serve import shm as shm_transport
from repro.serve.metrics import StreamingDigest

#: Virtual nodes per worker on the hash ring: smooths the key-space
#: split to within a few percent of even for small pools.
VNODES = 64

#: How long to wait for a worker to finish its queue during a graceful
#: drain before escalating to termination.
DRAIN_TIMEOUT_S = 60.0

_READY_TIMEOUT_S = 120.0


class NoLiveWorkersError(ReproError):
    """Every shard is draining or dead; the caller should retry."""


class WorkerJobError(ReproError):
    """The worker's computation raised; message carries the cause."""


class PoolClosedError(ReproError):
    """The pool was shut down while the job was pending."""


# --------------------------------------------------------------------------
# consistent hashing
# --------------------------------------------------------------------------

class HashRing:
    """Consistent-hash ring over worker ids with virtual nodes."""

    def __init__(self, members, vnodes: int = VNODES):
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: list = []       # sorted (hash, worker_id)
        self._hashes: list = []       # parallel list of hashes for bisect
        for member in members:
            for replica in range(vnodes):
                digest = hashlib.sha256(
                    f"worker:{member}:{replica}".encode()).hexdigest()
                self._points.append((int(digest, 16), member))
        self._points.sort()
        self._hashes = [p[0] for p in self._points]

    def __len__(self) -> int:
        return len({member for _, member in self._points})

    def shard_for(self, key: str) -> int:
        """The worker id owning ``key`` (first point clockwise)."""
        if not self._points:
            raise NoLiveWorkersError("hash ring is empty")
        point = int(hashlib.sha256(key.encode()).hexdigest(), 16)
        index = bisect.bisect_right(self._hashes, point)
        if index == len(self._points):
            index = 0
        return self._points[index][1]


# --------------------------------------------------------------------------
# worker process
# --------------------------------------------------------------------------

def warm_imports() -> None:
    """Pre-import the heavy compute stack inside a fresh worker.

    Keeps the first request's latency at compute cost rather than
    import cost; shared by this tier and the legacy ``SweepRunner``
    pool (as its initializer).
    """
    import numpy                                            # noqa: F401

    import repro.core.bandwidth_bench                       # noqa: F401
    import repro.core.latency_bench                         # noqa: F401
    import repro.noc.mesh.fastmesh                          # noqa: F401
    import repro.sidechannel.probe                          # noqa: F401
    from repro.serve import experiments                     # noqa: F401


def _worker_main(worker_id: int, inbox, outbox, cache_dir,
                 shm_min_bytes: int) -> None:
    """Worker process body: compute jobs from ``inbox`` until drained.

    One message per job: ``(job_id, name, params, key)``.  ``None`` is
    the drain sentinel — because the inbox is FIFO, every job enqueued
    before the drain finishes first.  Results go back on the shared
    ``outbox`` as small tuples; payload bytes above ``shm_min_bytes``
    travel through shared memory.
    """
    warm_imports()
    from repro.exec.cache import ResultCache
    from repro.serve.experiments import run_experiment
    from repro.serve.server import canonical_json

    cache = ResultCache(cache_dir) if cache_dir else None
    outbox.put(("ready", worker_id, os.getpid()))
    while True:
        message = inbox.get()
        if message is None:
            break
        job_id, name, params, key = message
        started = time.perf_counter()
        try:
            value = run_experiment((name, params))
            value_bytes = canonical_json(value)
            if cache is not None:
                cache.put_bytes(key, value_bytes)
            wall_ms = (time.perf_counter() - started) * 1e3
            if len(value_bytes) >= shm_min_bytes:
                ref = shm_transport.share_bytes(value_bytes, worker_id)
                outbox.put(("done", worker_id, job_id, "shm", ref,
                            ref.sha256, wall_ms))
            else:
                digest = hashlib.sha256(value_bytes).hexdigest()
                outbox.put(("done", worker_id, job_id, "inline",
                            value_bytes, digest, wall_ms))
        except Exception as exc:
            outbox.put(("error", worker_id, job_id,
                        f"{type(exc).__name__}: {exc}"))
    outbox.put(("bye", worker_id, os.getpid()))


# --------------------------------------------------------------------------
# parent-side pool
# --------------------------------------------------------------------------

@dataclass
class WorkerResult:
    """A completed computation, in wire form.

    ``value_bytes`` is the canonical JSON of the result value — exactly
    what the front-end splices into its response envelope, and what
    ``digest`` hashes.
    """
    value_bytes: bytes
    digest: str
    worker: str
    wall_ms: float
    transport: str


@dataclass
class _Job:
    future: Future
    name: str
    params: dict
    key: str
    worker_id: int = -1
    requeues: int = 0


@dataclass
class _Worker:
    worker_id: int
    process: object = None
    inbox: object = None
    pid: int = 0
    state: str = "starting"       # starting|ready|draining|dead|stopped
    ready: threading.Event = field(default_factory=threading.Event)
    completed: int = 0
    errors: int = 0
    shm_results: int = 0
    inline_results: int = 0
    restarts: int = 0
    # per-worker compute-latency digest; merged for the pool rollup
    wall_digest: StreamingDigest = field(default_factory=StreamingDigest)


class WorkerPool:
    """N sharded worker processes with crash recovery and drains."""

    def __init__(self, workers: int, cache_dir=None,
                 shm_min_bytes: int = shm_transport.SHM_MIN_BYTES,
                 vnodes: int = VNODES):
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}")
        self.size = workers
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.shm_min_bytes = shm_min_bytes
        self.vnodes = vnodes
        self._ctx = multiprocessing.get_context("spawn")
        self._outbox = self._ctx.Queue()
        self._workers: dict[int, _Worker] = {}
        self._jobs: dict[int, _Job] = {}
        self._pending: dict[int, set] = {}
        self._held: list = []            # jobs waiting for a live shard
        self._job_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._ring = HashRing([], vnodes)
        self._closing = False
        self._started = False
        self._collector: threading.Thread | None = None
        self._monitor: threading.Thread | None = None
        # pool-level counters (crash/requeue/restart accounting)
        self.crashes = 0
        self.requeued = 0
        self.restarts = 0

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Spawn every worker and wait until all report ready."""
        if self._started:
            return
        self._started = True
        self._collector = threading.Thread(
            target=self._collect, name="repro-pool-collector", daemon=True)
        self._collector.start()
        self._monitor = threading.Thread(
            target=self._watch, name="repro-pool-monitor", daemon=True)
        self._monitor.start()
        for worker_id in range(self.size):
            self._spawn(worker_id)
        for worker_id in range(self.size):
            self._await_ready(worker_id)

    def _spawn(self, worker_id: int) -> None:
        shm_transport.cleanup_orphans(worker_id)
        worker = _Worker(worker_id=worker_id)
        worker.inbox = self._ctx.Queue()
        worker.process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, worker.inbox, self._outbox, self.cache_dir,
                  self.shm_min_bytes),
            name=f"repro-serve-worker-{worker_id}", daemon=True)
        with self._lock:
            previous = self._workers.get(worker_id)
            if previous is not None:
                worker.completed = previous.completed
                worker.errors = previous.errors
                worker.shm_results = previous.shm_results
                worker.inline_results = previous.inline_results
                worker.restarts = previous.restarts
                worker.wall_digest = previous.wall_digest
            self._workers[worker_id] = worker
            self._pending.setdefault(worker_id, set())
        worker.process.start()

    def _await_ready(self, worker_id: int) -> None:
        worker = self._workers[worker_id]
        if not worker.ready.wait(timeout=_READY_TIMEOUT_S):
            raise ConfigurationError(
                f"worker {worker_id} did not become ready within "
                f"{_READY_TIMEOUT_S:.0f}s")

    def close(self) -> None:
        """Drain every worker, stop the threads, fail leftover jobs."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            workers = list(self._workers.values())
            self._ring = HashRing([], self.vnodes)
        for worker in workers:
            if worker.state in ("ready", "starting"):
                worker.state = "draining"
                worker.inbox.put(None)
        for worker in workers:
            if worker.process is not None:
                worker.process.join(timeout=DRAIN_TIMEOUT_S)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=5)
            worker.state = "stopped"
        self._outbox.put(("stop",))
        if self._collector is not None:
            self._collector.join(timeout=10)
        if self._monitor is not None:
            self._monitor.join(timeout=10)
        with self._lock:
            # held jobs were never popped from _jobs, so this covers them
            leftovers = list(self._jobs.values())
            self._jobs.clear()
            self._held.clear()
        for job in leftovers:
            if not job.future.done():
                job.future.set_exception(
                    PoolClosedError("worker pool closed"))

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- routing

    def submit(self, name: str, params: dict, key: str) -> Future:
        """Route ``(name, params)`` to ``key``'s shard; a Future."""
        future: Future = Future()
        job = _Job(future=future, name=name, params=params, key=key)
        with self._lock:
            if self._closing:
                raise PoolClosedError("worker pool closed")
            worker_id = self._ring.shard_for(key)     # NoLiveWorkersError
            job_id = next(self._job_ids)
            job.worker_id = worker_id
            self._jobs[job_id] = job
            self._pending[worker_id].add(job_id)
            worker = self._workers[worker_id]
        worker.inbox.put((job_id, name, params, key))
        return future

    def _reassign(self, job_ids: list) -> None:
        """Requeue jobs of a dead/draining worker onto live shards."""
        for job_id in job_ids:
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None:
                    continue
                job.requeues += 1
                self.requeued += 1
                try:
                    worker_id = self._ring.shard_for(job.key)
                except NoLiveWorkersError:
                    self._held.append((job_id, job))
                    continue
                job.worker_id = worker_id
                self._pending[worker_id].add(job_id)
                worker = self._workers[worker_id]
            worker.inbox.put((job_id, job.name, job.params, job.key))

    def _flush_held(self) -> None:
        """Re-route jobs parked while no shard was live."""
        with self._lock:
            held, self._held = self._held, []
        for job_id, job in held:
            with self._lock:
                if job_id not in self._jobs:
                    continue
                try:
                    worker_id = self._ring.shard_for(job.key)
                except NoLiveWorkersError:
                    self._held.append((job_id, job))
                    continue
                job.worker_id = worker_id
                self._pending[worker_id].add(job_id)
                worker = self._workers[worker_id]
            worker.inbox.put((job_id, job.name, job.params, job.key))

    # ----------------------------------------------------- drain / restart

    def restart_worker(self, worker_id: int) -> None:
        """Graceful single-worker restart: drain, respawn, rejoin ring.

        New work for the shard flows to the other workers the moment
        the drain starts (consistent hashing moves *only* this shard's
        keys); jobs already queued on the worker finish before it
        exits, so nothing is dropped.
        """
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None:
                raise ConfigurationError(f"no worker {worker_id}")
            if self._closing:
                raise PoolClosedError("worker pool closed")
            worker.state = "draining"
            self._rebuild_ring_locked()
        worker.inbox.put(None)
        worker.process.join(timeout=DRAIN_TIMEOUT_S)
        if worker.process.is_alive():               # stuck: escalate
            worker.process.terminate()
            worker.process.join(timeout=5)
        # the exited worker flushed its result queue before dying; give
        # the collector a moment to resolve those futures so only jobs
        # it truly never answered (crash mid-drain) get requeued
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            with self._lock:
                if not self._pending.get(worker_id):
                    break
            time.sleep(0.01)  # repro: noqa[REP002] -- drain bookkeeping
        with self._lock:
            leftovers = sorted(self._pending.get(worker_id, set()))
        if leftovers:                               # only if it crashed
            self._reassign(leftovers)
            with self._lock:
                self._pending[worker_id].clear()
        self._spawn(worker_id)
        self._await_ready(worker_id)
        with self._lock:
            restarted = self._workers[worker_id]
            restarted.restarts += 1
            self.restarts += 1
            self._rebuild_ring_locked()
        self._flush_held()

    def rolling_restart(self) -> None:
        """Restart every worker, one at a time, under load."""
        for worker_id in sorted(self._workers):
            self.restart_worker(worker_id)

    def _rebuild_ring_locked(self) -> None:
        live = [w.worker_id for w in self._workers.values()
                if w.state == "ready"]
        self._ring = HashRing(live, self.vnodes)

    # ----------------------------------------------------- result plumbing

    def _collect(self) -> None:
        """Collector thread: resolve futures from worker messages."""
        while True:
            message = self._outbox.get()
            kind = message[0]
            if kind == "stop":
                return
            if kind == "ready":
                _, worker_id, pid = message
                with self._lock:
                    worker = self._workers.get(worker_id)
                    if worker is not None:
                        worker.pid = pid
                        worker.state = "ready"
                        self._rebuild_ring_locked()
                        worker.ready.set()
                continue
            if kind == "bye":
                continue                      # drain acknowledged
            if kind == "done":
                _, worker_id, job_id, transport, payload, digest, wall = \
                    message
                self._finish(worker_id, job_id, transport, payload,
                             digest, wall)
            elif kind == "error":
                _, worker_id, job_id, text = message
                with self._lock:
                    job = self._jobs.pop(job_id, None)
                    self._pending.get(worker_id, set()).discard(job_id)
                    worker = self._workers.get(worker_id)
                    if worker is not None:
                        worker.errors += 1
                if job is not None and not job.future.done():
                    job.future.set_exception(WorkerJobError(text))

    def _finish(self, worker_id: int, job_id: int, transport: str,
                payload, digest: str, wall_ms: float) -> None:
        try:
            if transport == "shm":
                value_bytes = shm_transport.read_shared(payload)
            else:
                value_bytes = payload
        except shm_transport.ShmTransportError as exc:
            with self._lock:
                job = self._jobs.pop(job_id, None)
                self._pending.get(worker_id, set()).discard(job_id)
            if job is not None and not job.future.done():
                job.future.set_exception(WorkerJobError(str(exc)))
            return
        with self._lock:
            job = self._jobs.pop(job_id, None)
            self._pending.get(worker_id, set()).discard(job_id)
            worker = self._workers.get(worker_id)
            if worker is not None:
                worker.completed += 1
                worker.wall_digest.add(wall_ms / 1e3)
                if transport == "shm":
                    worker.shm_results += 1
                else:
                    worker.inline_results += 1
        if job is not None and not job.future.done():
            job.future.set_result(WorkerResult(
                value_bytes=value_bytes, digest=digest,
                worker=f"worker-{worker_id}", wall_ms=wall_ms,
                transport=transport))

    # ------------------------------------------------------ crash recovery

    def _watch(self) -> None:
        """Monitor thread: requeue + respawn after a worker crash."""
        while not self._closing:
            time.sleep(0.05)  # repro: noqa[REP002] -- watchdog thread
            with self._lock:
                if self._closing:
                    return
                dead = [w for w in self._workers.values()
                        if w.state == "ready" and w.process is not None
                        and not w.process.is_alive()]
                for worker in dead:
                    worker.state = "dead"
                    self.crashes += 1
                    self._rebuild_ring_locked()
            for worker in dead:
                with self._lock:
                    orphans = sorted(
                        self._pending.get(worker.worker_id, set()))
                    self._pending[worker.worker_id] = set()
                self._reassign(orphans)
                self._spawn(worker.worker_id)
                try:
                    self._await_ready(worker.worker_id)
                except ConfigurationError:
                    continue             # next sweep retries the respawn
                with self._lock:
                    respawned = self._workers[worker.worker_id]
                    respawned.restarts += 1
                self._flush_held()

    # ------------------------------------------------------------- metrics

    @property
    def live_workers(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers.values()
                       if w.state == "ready")

    def stats(self) -> dict:
        """Per-worker counters rolled up for ``/metricz``."""
        with self._lock:
            per_worker = {
                str(w.worker_id): {
                    "pid": w.pid,
                    "state": w.state,
                    "completed": w.completed,
                    "errors": w.errors,
                    "pending": len(self._pending.get(w.worker_id, ())),
                    "shm_results": w.shm_results,
                    "inline_results": w.inline_results,
                    "restarts": w.restarts,
                    "wall_ms": w.wall_digest.summary_ms(),
                } for w in self._workers.values()}
            # exact pool-wide latency rollup: merging the per-worker
            # digests equals digesting every completion centrally
            rollup = StreamingDigest()
            for w in self._workers.values():
                rollup.merge(w.wall_digest)
            return {
                "size": self.size,
                "live": sum(1 for w in self._workers.values()
                            if w.state == "ready"),
                "crashes": self.crashes,
                "requeued": self.requeued,
                "restarts": self.restarts,
                "shm_min_bytes": self.shm_min_bytes,
                "wall_ms_all": rollup.summary_ms(),
                "per_worker": per_worker,
            }
