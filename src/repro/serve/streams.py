"""Streaming measurement sessions: incremental observation over trace windows.

A long open-loop replay (:mod:`repro.traffic`) produces observations for
hours; recomputing a whole figure per refresh would be quadratic in
trace length.  Instead the server keeps a :class:`StreamBook` of named
*trace streams*: each stream is a sequence of fixed-width windows
(indexed by schedule-relative window number, **not** wall clock, so two
replays of the same schedule land observations in the same windows),
and each window folds its observations into a fixed-memory
:class:`~repro.serve.metrics.StreamingDigest` plus a set of integer
counters.

Clients feed a stream two ways:

* raw values (``values_s``): the server buckets them;
* a pre-bucketed digest state (``digest``): the client aggregated
  locally — e.g. one digest per driver worker — and the server merges
  bucket counts exactly (:meth:`StreamingDigest.merge`).  Merging is
  associative and exact, so per-worker/per-window rollups equal the
  digest of the undivided stream.

Everything here is mutated from the server's event-loop thread, like
:class:`~repro.serve.metrics.ServeMetrics` — no locking; snapshots are
assembled between awaits.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.serve.metrics import StreamingDigest

#: Bound on concurrently live streams per server.
MAX_STREAMS = 64

#: Bound on window indices per stream (fixed window width => bounded
#: replay horizon; a runaway client cannot grow server memory forever).
MAX_WINDOWS = 4096

#: Raw values accepted per observe call (larger batches should be
#: pre-digested client-side).
MAX_VALUES = 65536


class StreamError(ReproError):
    """A stream observation was malformed or exceeded a bound."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class _Window:
    """One trace window: a latency digest plus named counters."""

    __slots__ = ("digest", "counters")

    def __init__(self):
        self.digest = StreamingDigest()
        self.counters: dict[str, int] = {}

    def bump(self, counters: dict) -> None:
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0) + int(value)

    def summary(self, index: int) -> dict:
        return {"window": index,
                **self.digest.summary_ms(),
                "counters": dict(sorted(self.counters.items()))}


class TraceStream:
    """Named stream of windows; window width fixed at creation."""

    def __init__(self, name: str, window_s: float):
        if window_s <= 0:
            raise StreamError("window_s must be positive")
        self.name = name
        self.window_s = float(window_s)
        self.windows: dict[int, _Window] = {}

    def observe(self, window: int, *, digest_state=None, values_s=None,
                counters=None) -> dict:
        if not isinstance(window, int) or isinstance(window, bool) \
                or window < 0:
            raise StreamError("window must be a non-negative integer")
        if window >= MAX_WINDOWS:
            raise StreamError(
                f"window {window} beyond the {MAX_WINDOWS}-window bound")
        if digest_state is None and values_s is None and counters is None:
            raise StreamError(
                "observe wants digest and/or values_s and/or counters")
        slot = self.windows.get(window)
        if slot is None:
            slot = self.windows[window] = _Window()
        added = 0
        if values_s is not None:
            if not isinstance(values_s, list) or len(values_s) > MAX_VALUES \
                    or any(isinstance(v, bool) or
                           not isinstance(v, (int, float))
                           for v in values_s):
                raise StreamError(
                    f"values_s must be a list of <= {MAX_VALUES} numbers")
            for value in values_s:
                slot.digest.add(float(value))
            added += len(values_s)
        if digest_state is not None:
            try:
                incoming = StreamingDigest.from_state(digest_state)
            except ValueError as exc:
                raise StreamError(str(exc)) from None
            slot.digest.merge(incoming)
            added += incoming.count
        if counters is not None:
            if not isinstance(counters, dict) or any(
                    isinstance(v, bool) or not isinstance(v, int)
                    for v in counters.values()):
                raise StreamError("counters must map names to integers")
            slot.bump(counters)
        return {"stream": self.name, "window": window, "added": added,
                "window_count": slot.digest.count}

    def summary(self) -> dict:
        """Per-window summaries plus an exact whole-stream rollup."""
        total = StreamingDigest()
        counters: dict[str, int] = {}
        for slot in self.windows.values():
            total.merge(slot.digest)
            for name, value in slot.counters.items():
                counters[name] = counters.get(name, 0) + value
        return {"stream": self.name,
                "window_s": self.window_s,
                "windows": [self.windows[i].summary(i)
                            for i in sorted(self.windows)],
                "totals": {**total.summary_ms(),
                           "counters": dict(sorted(counters.items()))}}


class StreamBook:
    """All live streams of one server, keyed by name."""

    def __init__(self, max_streams: int = MAX_STREAMS):
        self.max_streams = max_streams
        self.streams: dict[str, TraceStream] = {}

    def observe(self, name: str, window: int, *, window_s: float = 1.0,
                digest_state=None, values_s=None, counters=None) -> dict:
        stream = self.streams.get(name)
        if stream is None:
            if len(self.streams) >= self.max_streams:
                raise StreamError(
                    f"server already tracks {self.max_streams} streams; "
                    "DELETE one first", status=409)
            stream = self.streams[name] = TraceStream(name, window_s)
        elif abs(stream.window_s - float(window_s)) > 1e-12:
            raise StreamError(
                f"stream {name!r} has window_s={stream.window_s}, "
                f"observation says {window_s}", status=409)
        return stream.observe(window, digest_state=digest_state,
                              values_s=values_s, counters=counters)

    def summary(self, name: str) -> dict:
        stream = self.streams.get(name)
        if stream is None:
            raise StreamError(f"no stream named {name!r}", status=404)
        return stream.summary()

    def delete(self, name: str) -> dict:
        stream = self.streams.pop(name, None)
        if stream is None:
            raise StreamError(f"no stream named {name!r}", status=404)
        return {"deleted": name, "windows": len(stream.windows)}

    def listing(self) -> dict:
        return {"streams": [
            {"name": s.name, "window_s": s.window_s,
             "windows": len(s.windows),
             "observations": sum(w.digest.count
                                 for w in s.windows.values())}
            for _, s in sorted(self.streams.items())]}
