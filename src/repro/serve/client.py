"""Clients for a running ``repro.serve`` server (blocking and async).

:class:`ServeClient` is built on :mod:`http.client` so tests,
benchmarks, and scripts need no third-party HTTP stack.  One connection
per request matches the server's ``Connection: close`` policy; a
:class:`ServeClient` is therefore cheap, stateless, and safe to share
across threads (each call opens its own socket).

:class:`AsyncServeClient` speaks the same one-request-per-connection
protocol over raw :func:`asyncio.open_connection` streams, so an
open-loop load generator (:mod:`repro.traffic`) can keep hundreds of
requests in flight from one event loop instead of serializing on a
blocking socket — with a **per-request deadline**: a request that has
not completed within ``deadline_s`` raises :class:`ServeDeadlineError`
instead of occupying the generator forever (the coordinated-omission
trap open-loop measurement exists to avoid).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import time
from dataclasses import dataclass
from typing import AsyncIterator, Iterator

from repro.errors import ReproError


class ServeClientError(ReproError):
    """The server could not be reached or violated the protocol."""


class ServeDeadlineError(ServeClientError):
    """A request missed its per-request deadline."""


@dataclass(frozen=True)
class Backoff:
    """Jittered exponential backoff for the *blocking* client's retries.

    The schedule starts at ``initial_s``, multiplies by ``multiplier``
    each attempt, clips at ``max_s``, and spreads each delay uniformly
    over ``[base * (1 - jitter), base * (1 + jitter)]`` so a fleet of
    clients polling one server does not thundering-herd in lockstep.
    ``seed`` pins the jitter stream for reproducible tests; the default
    ``None`` draws fresh jitter per :class:`Backoff` use.
    """

    initial_s: float = 0.02
    max_s: float = 0.5
    multiplier: float = 2.0
    jitter: float = 0.25
    seed: int | None = None

    def __post_init__(self):
        if self.initial_s <= 0 or self.max_s < self.initial_s:
            raise ValueError("need 0 < initial_s <= max_s")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delays(self) -> Iterator[float]:
        """Infinite stream of sleep durations (seconds)."""
        rng = random.Random(self.seed)
        base = self.initial_s
        while True:
            yield base * (1.0 + self.jitter * rng.uniform(-1.0, 1.0))
            base = min(base * self.multiplier, self.max_s)


@dataclass(frozen=True)
class ServeReply:
    """One HTTP exchange: status code plus the raw response bytes."""
    status: int
    body: bytes

    @property
    def json(self):
        return json.loads(self.body)

    @property
    def ok(self) -> bool:
        return self.status == 200

    def value(self):
        """The experiment result inside a successful envelope."""
        if not self.ok:
            raise ServeClientError(
                f"HTTP {self.status}: {self.body[:200]!r}")
        return self.json["value"]


class ServeClient:
    """Issue requests against one server address.

    Every endpoint the server exposes is idempotent (experiments are
    pure functions of their normalized params), so :meth:`request`
    transparently retries ``503 Service Unavailable`` answers — the
    status a draining worker shard returns during a rolling restart —
    up to ``retry_attempts`` tries, sleeping per ``retry`` between
    them.  Connection-level failures are *not* retried here: callers
    that want to wait for a server to exist use :meth:`wait_healthy`,
    which owns its own deadline.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8737,
                 timeout: float = 120.0, retry: Backoff | None = None,
                 retry_attempts: int = 5):
        if retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry or Backoff()
        self.retry_attempts = retry_attempts

    def request(self, method: str, path: str, payload=None,
                deadline_s: float | None = None) -> ServeReply:
        """One exchange; ``deadline_s`` overrides the client timeout.

        The blocking client's deadline is a per-socket-operation bound
        (connect/send/receive each get it), the closest the stdlib
        HTTP stack offers; the async client enforces a true end-to-end
        deadline.
        """
        delays = self.retry.delays()
        for attempt in range(self.retry_attempts):
            reply = self._request_once(method, path, payload, deadline_s)
            if reply.status != 503 or attempt == self.retry_attempts - 1:
                return reply
            # blocking client by design; never runs on the event loop
            time.sleep(next(delays))  # repro: noqa[REP002]
        return reply

    def _request_once(self, method: str, path: str, payload=None,
                      deadline_s: float | None = None) -> ServeReply:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode()
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if deadline_s is None else deadline_s)
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return ServeReply(response.status, response.read())
        except (OSError, http.client.HTTPException) as exc:
            raise ServeClientError(
                f"{method} {path} against "
                f"{self.host}:{self.port} failed: {exc}") from exc
        finally:
            connection.close()

    # ------------------------------------------------------------ endpoints

    def healthz(self) -> ServeReply:
        return self.request("GET", "/healthz")

    def metricz(self) -> ServeReply:
        return self.request("GET", "/metricz")

    def experiments(self) -> ServeReply:
        return self.request("GET", "/v1/experiments")

    def experiment(self, name: str, **params) -> ServeReply:
        return self.request("POST", f"/v1/experiments/{name}",
                            payload=params)

    def receipts(self) -> ServeReply:
        return self.request("GET", "/v1/receipts")

    def replay(self, *, request_sha: str | None = None,
               seq: int | None = None) -> ServeReply:
        payload = ({"request_sha": request_sha}
                   if request_sha is not None else {"seq": seq})
        return self.request("POST", "/v1/replay", payload=payload)

    def restart_workers(self) -> ServeReply:
        return self.request("POST", "/v1/workers/restart")

    # ------------------------------------------------------- trace streams

    def streams(self) -> ServeReply:
        return self.request("GET", "/v1/streams")

    def stream_summary(self, name: str) -> ServeReply:
        return self.request("GET", f"/v1/streams/{name}")

    def stream_observe(self, name: str, window: int, *,
                       window_s: float = 1.0, digest=None, values_s=None,
                       counters=None) -> ServeReply:
        payload = {"window": window, "window_s": window_s}
        if digest is not None:
            payload["digest"] = digest
        if values_s is not None:
            payload["values_s"] = values_s
        if counters is not None:
            payload["counters"] = counters
        return self.request("POST", f"/v1/streams/{name}/observe",
                            payload=payload)

    def stream_delete(self, name: str) -> ServeReply:
        return self.request("DELETE", f"/v1/streams/{name}")

    def wait_healthy(self, deadline_s: float = 10.0,
                     backoff: Backoff | None = None) -> dict:
        """Poll ``/healthz`` until it answers; the health dict, or raise.

        Retries follow ``backoff`` (default :class:`Backoff`), each sleep
        additionally capped by the remaining ``deadline_s`` budget so the
        total wait never overshoots the deadline by more than one poll.
        This helper is *intentionally* blocking — it is the sync client's
        startup handshake, never run on the server's event loop — hence
        the explicit lint allowance on its sleep.
        """
        deadline = time.monotonic() + deadline_s
        last: Exception | None = None
        for delay in (backoff or Backoff()).delays():
            try:
                reply = self.healthz()
                if reply.ok:
                    return reply.json
            except ServeClientError as exc:
                last = exc
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            time.sleep(min(delay, remaining))  # repro: noqa[REP002]
        raise ServeClientError(
            f"server at {self.host}:{self.port} not healthy "
            f"within {deadline_s}s: {last}")


class AsyncServeClient:
    """Non-blocking client: many concurrent requests from one event loop.

    Speaks the server's minimal HTTP/1.1 dialect (one request per
    connection, ``Connection: close``) over asyncio streams.  Every
    request carries a hard end-to-end deadline — connect, send, and the
    full response all inside ``deadline_s`` — because an open-loop
    generator must never let a stuck request silently absorb the
    scheduled sends behind it.  ``503`` answers (a draining worker
    shard) retry on the same jittered :class:`Backoff` schedule as the
    blocking client, with ``asyncio.sleep`` and the remaining deadline
    budget capping each pause.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8737,
                 deadline_s: float = 30.0, retry: Backoff | None = None,
                 retry_attempts: int = 5):
        if retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        self.host = host
        self.port = port
        self.deadline_s = deadline_s
        self.retry = retry or Backoff()
        self.retry_attempts = retry_attempts

    async def request(self, method: str, path: str, payload=None,
                      deadline_s: float | None = None) -> ServeReply:
        budget = self.deadline_s if deadline_s is None else deadline_s
        deadline = asyncio.get_running_loop().time() + budget
        delays: Iterator[float] = self.retry.delays()
        for attempt in range(self.retry_attempts):
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise ServeDeadlineError(
                    f"{method} {path}: deadline {budget}s exhausted "
                    f"after {attempt} attempt(s)")
            try:
                reply = await asyncio.wait_for(
                    self._request_once(method, path, payload), remaining)
            except asyncio.TimeoutError:
                raise ServeDeadlineError(
                    f"{method} {path} against {self.host}:{self.port} "
                    f"missed its {budget}s deadline") from None
            if reply.status != 503 or attempt == self.retry_attempts - 1:
                return reply
            pause = min(next(delays),
                        max(0.0,
                            deadline - asyncio.get_running_loop().time()))
            await asyncio.sleep(pause)
        return reply

    async def _request_once(self, method: str, path: str,
                            payload=None) -> ServeReply:
        body = b""
        extra = ""
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode()
            extra = "Content-Type: application/json\r\n"
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extra}Connection: close\r\n\r\n")
        try:
            reader, writer = await asyncio.open_connection(self.host,
                                                           self.port)
        except OSError as exc:
            raise ServeClientError(
                f"{method} {path} against "
                f"{self.host}:{self.port} failed: {exc}") from exc
        try:
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
            return await self._read_response(reader, method, path)
        except (OSError, asyncio.IncompleteReadError,
                ValueError) as exc:
            raise ServeClientError(
                f"{method} {path} against "
                f"{self.host}:{self.port} failed: {exc}") from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    @staticmethod
    async def _read_response(reader, method: str, path: str) -> ServeReply:
        raw_head = await reader.readuntil(b"\r\n\r\n")
        lines = raw_head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServeClientError(
                f"{method} {path}: malformed status line {lines[0]!r}")
        status = int(parts[1])
        length = None
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length is not None:
            body = await reader.readexactly(length)
        else:                       # Connection: close delimits the body
            body = await reader.read()
        return ServeReply(status, body)

    # ------------------------------------------------------------ endpoints

    async def healthz(self) -> ServeReply:
        return await self.request("GET", "/healthz")

    async def metricz(self) -> ServeReply:
        return await self.request("GET", "/metricz")

    async def experiment(self, name: str, *, deadline_s: float | None = None,
                         **params) -> ServeReply:
        return await self.request("POST", f"/v1/experiments/{name}",
                                  payload=params, deadline_s=deadline_s)

    async def stream_observe(self, name: str, window: int, *,
                             window_s: float = 1.0, digest=None,
                             values_s=None, counters=None) -> ServeReply:
        payload = {"window": window, "window_s": window_s}
        if digest is not None:
            payload["digest"] = digest
        if values_s is not None:
            payload["values_s"] = values_s
        if counters is not None:
            payload["counters"] = counters
        return await self.request("POST", f"/v1/streams/{name}/observe",
                                  payload=payload)

    async def stream_summary(self, name: str) -> ServeReply:
        return await self.request("GET", f"/v1/streams/{name}")

    async def replies(self, requests) -> AsyncIterator[ServeReply]:
        """Fire ``(method, path, payload)`` tuples concurrently; yield
        replies in completion order (a convenience for scripts — the
        open-loop driver schedules its own sends)."""
        tasks = [asyncio.ensure_future(self.request(m, p, payload))
                 for m, p, payload in requests]
        for task in asyncio.as_completed(tasks):
            yield await task
