"""Blocking stdlib client for a running ``repro.serve`` server.

Built on :mod:`http.client` so tests, benchmarks, and scripts need no
third-party HTTP stack.  One connection per request matches the server's
``Connection: close`` policy; a :class:`ServeClient` is therefore cheap,
stateless, and safe to share across threads (each call opens its own
socket).
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass

from repro.errors import ReproError


class ServeClientError(ReproError):
    """The server could not be reached or violated the protocol."""


@dataclass(frozen=True)
class ServeReply:
    """One HTTP exchange: status code plus the raw response bytes."""
    status: int
    body: bytes

    @property
    def json(self):
        return json.loads(self.body)

    @property
    def ok(self) -> bool:
        return self.status == 200

    def value(self):
        """The experiment result inside a successful envelope."""
        if not self.ok:
            raise ServeClientError(
                f"HTTP {self.status}: {self.body[:200]!r}")
        return self.json["value"]


class ServeClient:
    """Issue requests against one server address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8737,
                 timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(self, method: str, path: str, payload=None) -> ServeReply:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode()
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return ServeReply(response.status, response.read())
        except (OSError, http.client.HTTPException) as exc:
            raise ServeClientError(
                f"{method} {path} against "
                f"{self.host}:{self.port} failed: {exc}") from exc
        finally:
            connection.close()

    # ------------------------------------------------------------ endpoints

    def healthz(self) -> ServeReply:
        return self.request("GET", "/healthz")

    def metricz(self) -> ServeReply:
        return self.request("GET", "/metricz")

    def experiments(self) -> ServeReply:
        return self.request("GET", "/v1/experiments")

    def experiment(self, name: str, **params) -> ServeReply:
        return self.request("POST", f"/v1/experiments/{name}",
                            payload=params)

    def wait_healthy(self, deadline_s: float = 10.0) -> dict:
        """Poll ``/healthz`` until it answers; the health dict, or raise."""
        deadline = time.monotonic() + deadline_s
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                reply = self.healthz()
                if reply.ok:
                    return reply.json
            except ServeClientError as exc:
                last = exc
            time.sleep(0.02)
        raise ServeClientError(
            f"server at {self.host}:{self.port} not healthy "
            f"within {deadline_s}s: {last}")
