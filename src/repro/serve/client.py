"""Blocking stdlib client for a running ``repro.serve`` server.

Built on :mod:`http.client` so tests, benchmarks, and scripts need no
third-party HTTP stack.  One connection per request matches the server's
``Connection: close`` policy; a :class:`ServeClient` is therefore cheap,
stateless, and safe to share across threads (each call opens its own
socket).
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ReproError


class ServeClientError(ReproError):
    """The server could not be reached or violated the protocol."""


@dataclass(frozen=True)
class Backoff:
    """Jittered exponential backoff for the *blocking* client's retries.

    The schedule starts at ``initial_s``, multiplies by ``multiplier``
    each attempt, clips at ``max_s``, and spreads each delay uniformly
    over ``[base * (1 - jitter), base * (1 + jitter)]`` so a fleet of
    clients polling one server does not thundering-herd in lockstep.
    ``seed`` pins the jitter stream for reproducible tests; the default
    ``None`` draws fresh jitter per :class:`Backoff` use.
    """

    initial_s: float = 0.02
    max_s: float = 0.5
    multiplier: float = 2.0
    jitter: float = 0.25
    seed: int | None = None

    def __post_init__(self):
        if self.initial_s <= 0 or self.max_s < self.initial_s:
            raise ValueError("need 0 < initial_s <= max_s")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delays(self) -> Iterator[float]:
        """Infinite stream of sleep durations (seconds)."""
        rng = random.Random(self.seed)
        base = self.initial_s
        while True:
            yield base * (1.0 + self.jitter * rng.uniform(-1.0, 1.0))
            base = min(base * self.multiplier, self.max_s)


@dataclass(frozen=True)
class ServeReply:
    """One HTTP exchange: status code plus the raw response bytes."""
    status: int
    body: bytes

    @property
    def json(self):
        return json.loads(self.body)

    @property
    def ok(self) -> bool:
        return self.status == 200

    def value(self):
        """The experiment result inside a successful envelope."""
        if not self.ok:
            raise ServeClientError(
                f"HTTP {self.status}: {self.body[:200]!r}")
        return self.json["value"]


class ServeClient:
    """Issue requests against one server address.

    Every endpoint the server exposes is idempotent (experiments are
    pure functions of their normalized params), so :meth:`request`
    transparently retries ``503 Service Unavailable`` answers — the
    status a draining worker shard returns during a rolling restart —
    up to ``retry_attempts`` tries, sleeping per ``retry`` between
    them.  Connection-level failures are *not* retried here: callers
    that want to wait for a server to exist use :meth:`wait_healthy`,
    which owns its own deadline.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8737,
                 timeout: float = 120.0, retry: Backoff | None = None,
                 retry_attempts: int = 5):
        if retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry or Backoff()
        self.retry_attempts = retry_attempts

    def request(self, method: str, path: str, payload=None) -> ServeReply:
        delays = self.retry.delays()
        for attempt in range(self.retry_attempts):
            reply = self._request_once(method, path, payload)
            if reply.status != 503 or attempt == self.retry_attempts - 1:
                return reply
            # blocking client by design; never runs on the event loop
            time.sleep(next(delays))  # repro: noqa[REP002]
        return reply

    def _request_once(self, method: str, path: str,
                      payload=None) -> ServeReply:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode()
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return ServeReply(response.status, response.read())
        except (OSError, http.client.HTTPException) as exc:
            raise ServeClientError(
                f"{method} {path} against "
                f"{self.host}:{self.port} failed: {exc}") from exc
        finally:
            connection.close()

    # ------------------------------------------------------------ endpoints

    def healthz(self) -> ServeReply:
        return self.request("GET", "/healthz")

    def metricz(self) -> ServeReply:
        return self.request("GET", "/metricz")

    def experiments(self) -> ServeReply:
        return self.request("GET", "/v1/experiments")

    def experiment(self, name: str, **params) -> ServeReply:
        return self.request("POST", f"/v1/experiments/{name}",
                            payload=params)

    def receipts(self) -> ServeReply:
        return self.request("GET", "/v1/receipts")

    def replay(self, *, request_sha: str | None = None,
               seq: int | None = None) -> ServeReply:
        payload = ({"request_sha": request_sha}
                   if request_sha is not None else {"seq": seq})
        return self.request("POST", "/v1/replay", payload=payload)

    def restart_workers(self) -> ServeReply:
        return self.request("POST", "/v1/workers/restart")

    def wait_healthy(self, deadline_s: float = 10.0,
                     backoff: Backoff | None = None) -> dict:
        """Poll ``/healthz`` until it answers; the health dict, or raise.

        Retries follow ``backoff`` (default :class:`Backoff`), each sleep
        additionally capped by the remaining ``deadline_s`` budget so the
        total wait never overshoots the deadline by more than one poll.
        This helper is *intentionally* blocking — it is the sync client's
        startup handshake, never run on the server's event loop — hence
        the explicit lint allowance on its sleep.
        """
        deadline = time.monotonic() + deadline_s
        last: Exception | None = None
        for delay in (backoff or Backoff()).delays():
            try:
                reply = self.healthz()
                if reply.ok:
                    return reply.json
            except ServeClientError as exc:
                last = exc
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            time.sleep(min(delay, remaining))  # repro: noqa[REP002]
        raise ServeClientError(
            f"server at {self.host}:{self.port} not healthy "
            f"within {deadline_s}s: {last}")
