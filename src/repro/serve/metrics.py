"""Live service metrics: counters, gauges, streaming latency quantiles.

Everything here is mutated from the server's single event-loop thread,
so no locking is needed; readers (``GET /metricz``) see a consistent
snapshot because the snapshot is assembled between awaits.

Latency percentiles come from :class:`StreamingDigest`, a fixed-memory
log-bucketed histogram: observations land in geometrically spaced
buckets (4 % wide), so any quantile is answered in O(buckets) with a
worst-case relative error of half a bucket (~2 %) regardless of how many
millions of observations streamed through — the standard trick for
service latencies, where absolute error must scale with the value
(1 ms resolution at 25 ms, not at 10 s).
"""

from __future__ import annotations

import math
import time

#: Bucket boundaries grow by this factor: relative quantile error ~2 %.
_GROWTH = 1.04

#: Smallest distinguishable latency (seconds); everything below lands in
#: bucket 0.
_FLOOR = 1e-5


class StreamingDigest:
    """Fixed-memory quantile digest over a stream of positive values."""

    def __init__(self):
        self._counts: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0

    def _bucket(self, value: float) -> int:
        if value <= _FLOOR:
            return 0
        return 1 + int(math.log(value / _FLOOR) / math.log(_GROWTH))

    def _midpoint(self, bucket: int) -> float:
        if bucket == 0:
            return _FLOOR / 2
        low = _FLOOR * _GROWTH ** (bucket - 1)
        return low * (1 + _GROWTH) / 2

    def add(self, value: float) -> None:
        value = max(0.0, float(value))
        bucket = self._bucket(value)
        self._counts[bucket] = self._counts.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value

    def quantile(self, q: float, *, empty: float = 0.0) -> float:
        """Approximate ``q``-quantile (0..1).

        An empty digest has no quantiles: rather than letting the bucket
        walk fall through to whatever ``maximum`` happens to hold, the
        empty case returns ``empty`` explicitly — ``0.0`` by default, or
        pass ``empty=float("nan")`` when "no data" must stay
        distinguishable from "all-zero latencies" (window rollups do).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile wants q in [0, 1], got {q}")
        if self.count == 0:
            return empty
        rank = min(self.count - 1, int(q * self.count))
        seen = 0
        for bucket in sorted(self._counts):
            seen += self._counts[bucket]
            if seen > rank:
                return min(self._midpoint(bucket), self.maximum)
        return self.maximum

    def merge(self, other: "StreamingDigest") -> "StreamingDigest":
        """Fold ``other``'s observations into this digest, in place.

        Bucket counts add exactly, so merging per-worker (or per-window)
        digests yields the same digest as streaming every observation
        through one instance — the property rollups rely on.  Returns
        ``self`` so rollup loops can chain.
        """
        for bucket, n in other._counts.items():
            self._counts[bucket] = self._counts.get(bucket, 0) + n
        self.count += other.count
        self.total += other.total
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        return self

    def to_state(self) -> dict:
        """JSON-serializable state; ``from_state`` round-trips exactly.

        Bucket indices become string keys (JSON objects have string
        keys), counts stay exact integers.
        """
        return {"counts": {str(b): n for b, n in sorted(self._counts.items())},
                "count": self.count,
                "total": self.total,
                "maximum": self.maximum}

    @classmethod
    def from_state(cls, state: dict) -> "StreamingDigest":
        """Rebuild a digest from :meth:`to_state` output (validated)."""
        try:
            counts = {int(b): int(n) for b, n in state["counts"].items()}
            count = int(state["count"])
            total = float(state["total"])
            maximum = float(state["maximum"])
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ValueError(f"malformed digest state: {exc}") from None
        if any(b < 0 or n < 0 for b, n in counts.items()):
            raise ValueError("digest state has negative bucket/count")
        if count != sum(counts.values()) or total < 0 or maximum < 0:
            raise ValueError("digest state counts are inconsistent")
        digest = cls()
        digest._counts = counts
        digest.count = count
        digest.total = total
        digest.maximum = maximum
        return digest

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary_ms(self) -> dict:
        """Count plus mean/p50/p90/p99/max in milliseconds."""
        return {"count": self.count,
                "mean_ms": self.mean * 1e3,
                "p50_ms": self.quantile(0.50) * 1e3,
                "p90_ms": self.quantile(0.90) * 1e3,
                "p99_ms": self.quantile(0.99) * 1e3,
                "max_ms": self.maximum * 1e3}


class ServeMetrics:
    """The server's live counters/gauges/digests, one instance per server.

    Counter semantics (asserted by the end-to-end tests, documented here
    so they stay stable):

    * ``requests[<experiment>]`` / ``requests[<endpoint>]`` — every
      request that reached routing, keyed by experiment name or bare
      endpoint (``healthz``/``metricz``/``experiments``).
    * ``computations`` — underlying experiment computations actually
      dispatched to the pool.  N coalesced identical requests bump this
      exactly once.
    * ``coalesced`` — requests that joined another request's in-flight
      computation instead of starting their own.
    * ``cache_hits`` / ``cache_misses`` — result-cache lookups on the
      hot path (followers of a flight never consult the cache).
    * ``rejected`` — fast 429 responses from admission control.
    * ``shm_results`` / ``inline_results`` — how each computation's
      result bytes travelled back from the compute tier: a shared-memory
      segment (large payloads on the worker tier) or in-band (small
      payloads; the legacy pool's pickle transport also counts here).
    * ``replays`` — completed ``POST /v1/replay`` recomputations.
    * For any experiment:  requests == computations + coalesced +
      cache_hits + rejected + errors (each request takes exactly one of
      those paths).
    """

    def __init__(self):
        self.started_at = time.monotonic()
        self.requests: dict[str, int] = {}
        self.responses: dict[int, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced = 0
        self.computations = 0
        self.rejected = 0
        self.errors = 0
        self.shm_results = 0
        self.inline_results = 0
        self.replays = 0
        self.inflight_requests = 0
        self.inflight_computations = 0
        self.request_latency = StreamingDigest()
        self.compute_latency = StreamingDigest()

    def note_request(self, route: str) -> None:
        self.requests[route] = self.requests.get(route, 0) + 1

    def note_response(self, status: int, seconds: float) -> None:
        self.responses[status] = self.responses.get(status, 0) + 1
        self.request_latency.add(seconds)

    def snapshot(self) -> dict:
        """The ``/metricz`` JSON document."""
        return {
            "uptime_s": time.monotonic() - self.started_at,
            "counters": {
                "requests_total": sum(self.requests.values()),
                "requests": dict(sorted(self.requests.items())),
                "responses": {str(code): n for code, n
                              in sorted(self.responses.items())},
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "coalesced": self.coalesced,
                "computations": self.computations,
                "rejected": self.rejected,
                "errors": self.errors,
                "shm_results": self.shm_results,
                "inline_results": self.inline_results,
                "replays": self.replays,
            },
            "gauges": {
                "inflight_requests": self.inflight_requests,
                "inflight_computations": self.inflight_computations,
            },
            "latency": {
                "request": self.request_latency.summary_ms(),
                "compute": self.compute_latency.summary_ms(),
            },
        }
