"""The measurement-as-a-service HTTP server (stdlib asyncio only).

``ExperimentServer`` turns the repository's headline experiments into a
long-lived JSON-over-HTTP service.  A request's life:

1. **Parse + validate** (event loop, microseconds).  Unknown routes,
   experiments, or parameters are rejected before touching any budget.
2. **Coalesce** — if an identical computation (same content key) is
   already in flight, the request joins it (:class:`Singleflight`) and
   costs nothing.
3. **Hot path** — a :class:`~repro.exec.cache.ResultCache` lookup in a
   helper thread; a hit is served without queueing.
4. **Admission** — the cold path must win a bounded in-flight slot
   (:class:`AdmissionController`); when the budget is exhausted the
   request gets an immediate ``429`` with ``Retry-After`` instead of an
   unbounded queue.
5. **Compute** — the experiment runs on a persistent
   :class:`~repro.exec.runner.SweepRunner` process pool, off the event
   loop; the result is cached, and every coalesced waiter gets the same
   value.

Responses for an experiment are canonical JSON (sorted keys, fixed
separators) of ``{experiment, params, value}``, so the bytes are
identical whether a given response was computed, coalesced, or a cache
hit — a property the end-to-end tests assert.

``stop()`` drains gracefully: the listener closes first, in-flight
requests (and their computations) finish, then the pool shuts down.

HTTP handling is deliberately minimal — HTTP/1.1, one request per
connection, ``Connection: close`` — because the server's clients are
programmatic (:mod:`repro.serve.client`, curl, load generators), not
browsers.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time

from repro.exec import ResultCache, SweepRunner, cache_key
from repro.exec.cache import _jsonify
from repro.serve.coalesce import AdmissionController, Singleflight
from repro.serve.experiments import (EXPERIMENTS, ExperimentRequestError,
                                     cache_payload, describe_experiments,
                                     normalize, run_experiment)
from repro.serve.metrics import ServeMetrics
from repro.units import MIB

#: Default bound on concurrently admitted (cold) computations.
DEFAULT_MAX_INFLIGHT = 8

#: Reject request bodies larger than this (bytes).
MAX_BODY_BYTES = MIB

_REQUEST_TIMEOUT_S = 30.0

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}

_MISS = object()


def canonical_json(value) -> bytes:
    """Deterministic JSON bytes (sorted keys, tight separators)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=_jsonify).encode()


class _HttpError(Exception):
    """Internal: carries an HTTP status + JSON error payload."""

    def __init__(self, status: int, message: str, **extra):
        super().__init__(message)
        self.status = status
        self.payload = {"error": message, **extra}


class ExperimentServer:
    """Serve the registry's experiments over HTTP on one event loop."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 jobs: int = 1, cache_dir=None,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT):
        self.host = host
        self.port = port                      # 0 = ephemeral; set on start
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.runner = SweepRunner(jobs, persistent=True)
        self.metrics = ServeMetrics()
        self.flights = Singleflight()
        self.admission = AdmissionController(max_inflight)
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._open_handlers = 0
        self._handlers_idle: asyncio.Event | None = None

    # ---------------------------------------------------------------- setup

    async def start(self) -> None:
        """Bind and start accepting (resolves ``self.port`` if it was 0)."""
        self._handlers_idle = asyncio.Event()
        self._handlers_idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def stop(self, drain_timeout: float = 30.0) -> None:
        """Graceful drain: stop accepting, finish in-flight work, close."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(self._handlers_idle.wait(),
                                   drain_timeout)
        self.runner.close()

    # ------------------------------------------------------------- protocol

    async def _handle_connection(self, reader, writer) -> None:
        self._open_handlers += 1
        self._handlers_idle.clear()
        started = time.monotonic()
        self.metrics.inflight_requests += 1
        status, body = 500, b"{}"
        try:
            try:
                method, target, headers = await asyncio.wait_for(
                    self._read_head(reader), _REQUEST_TIMEOUT_S)
                payload = await asyncio.wait_for(
                    self._read_body(reader, headers), _REQUEST_TIMEOUT_S)
                status, body = await self._route(method, target, payload)
            except _HttpError as exc:
                status, body = exc.status, canonical_json(exc.payload)
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                    asyncio.TimeoutError, UnicodeDecodeError):
                status, body = 400, canonical_json(
                    {"error": "malformed HTTP request"})
            except (ConnectionResetError, BrokenPipeError):
                status = 499            # client went away; nothing to write
                return
            except Exception as exc:        # unexpected: 500, count it
                self.metrics.errors += 1
                status, body = 500, canonical_json(
                    {"error": f"internal error: {exc}"})
            await self._write_response(writer, status, body)
        finally:
            self.metrics.inflight_requests -= 1
            self.metrics.note_response(status, time.monotonic() - started)
            self._open_handlers -= 1
            if self._open_handlers == 0:
                self._handlers_idle.set()

    async def _read_head(self, reader) -> tuple:
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    async def _read_body(self, reader, headers: dict) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        return await reader.readexactly(length) if length > 0 else b""

    async def _write_response(self, writer, status: int,
                              body: bytes) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n")
        if status == 429:
            head += "Retry-After: 1\r\n"
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            writer.write(head.encode("latin-1") + b"\r\n" + body)
            await writer.drain()
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()

    # -------------------------------------------------------------- routing

    async def _route(self, method: str, target: str,
                     payload: bytes) -> tuple:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self.metrics.note_request("healthz")
            self._require(method, "GET")
            return 200, canonical_json(self._health())
        if path == "/metricz":
            self.metrics.note_request("metricz")
            self._require(method, "GET")
            return 200, canonical_json(self.metrics.snapshot())
        if path == "/v1/experiments":
            self.metrics.note_request("experiments")
            self._require(method, "GET")
            return 200, canonical_json(describe_experiments())
        if path.startswith("/v1/experiments/"):
            name = path[len("/v1/experiments/"):]
            self.metrics.note_request(name)
            self._require(method, "POST")
            if name not in EXPERIMENTS:
                raise _HttpError(
                    404, f"unknown experiment {name!r}",
                    known=sorted(EXPERIMENTS))
            return 200, await self._experiment_response(name, payload)
        raise _HttpError(404, f"no route for {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    def _health(self) -> dict:
        return {"status": "draining" if self._draining else "ok",
                "inflight_requests": self.metrics.inflight_requests,
                "inflight_computations": self.admission.active,
                "experiments": len(EXPERIMENTS)}

    # ----------------------------------------------------- experiment paths

    async def _experiment_response(self, name: str,
                                   payload: bytes) -> bytes:
        try:
            raw = json.loads(payload.decode()) if payload else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise _HttpError(400, "request body must be JSON") from None
        try:
            params = normalize(name, raw)
        except ExperimentRequestError as exc:
            raise _HttpError(400, str(exc)) from None
        # mesh experiments key on the mesh kernel's fingerprint (so a
        # FASTMESH_VERSION bump invalidates exactly the batched entries);
        # device experiments key on the measurement engine's
        key = cache_key(f"serve:{name}", cache_payload(name, params),
                        engine=params.get("mesh_engine")
                        if name.startswith("mesh-")
                        else params.get("engine"))
        value = await self._resolve(name, params, key)
        return canonical_json(
            {"experiment": name, "params": params, "value": value})

    async def _resolve(self, name: str, params: dict, key: str):
        """Coalesce -> cache -> admission -> compute, in that order."""
        flight = self.flights.leader_for(key)
        if flight is not None:
            value = await asyncio.shield(flight)
            self.metrics.coalesced += 1
            return value
        if self.cache is not None:
            value = await asyncio.to_thread(self.cache.get, key, _MISS)
            if value is not _MISS:
                self.metrics.cache_hits += 1
                return value
            self.metrics.cache_misses += 1
            # the cache lookup awaited: an identical request may have
            # started a flight meanwhile — join it rather than race it
            flight = self.flights.leader_for(key)
            if flight is not None:
                value = await asyncio.shield(flight)
                self.metrics.coalesced += 1
                return value
        if self._draining:
            raise _HttpError(503, "server is draining")
        if not self.admission.try_acquire():
            self.metrics.rejected += 1
            raise _HttpError(
                429, "server at capacity",
                inflight=self.admission.active,
                limit=self.admission.limit)
        value, led = await self.flights.run(
            key, lambda: self._compute(name, params, key))
        if not led:                        # lost the registration race
            self.admission.release()
            self.metrics.coalesced += 1
        return value

    async def _compute(self, name: str, params: dict, key: str):
        started = time.monotonic()
        self.metrics.inflight_computations += 1
        try:
            future = self.runner.submit(run_experiment, (name, params))
            value = await asyncio.wrap_future(future)
            self.metrics.computations += 1
            if self.cache is not None:
                await asyncio.to_thread(self.cache.put, key, value)
            return value
        finally:
            self.metrics.inflight_computations -= 1
            self.metrics.compute_latency.add(time.monotonic() - started)
            self.admission.release()


# --------------------------------------------------------------------------
# embedding helper: run a server on a background thread (tests, benchmarks)
# --------------------------------------------------------------------------

@contextlib.contextmanager
def serve_in_thread(**kwargs):
    """Run an :class:`ExperimentServer` on a daemon thread; yield it.

    The server is started before the body runs (``server.port`` is the
    bound ephemeral port) and gracefully drained afterwards.  This is
    how the test suite and the load benchmark embed the service without
    shelling out.
    """
    server = ExperimentServer(**kwargs)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    boot_error: list = []

    def _run():
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:       # surface bind failures
            boot_error.append(exc)
            ready.set()
            return
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    ready.wait(timeout=30)
    if boot_error:
        loop.close()
        raise boot_error[0]
    try:
        yield server
    finally:
        future = asyncio.run_coroutine_threadsafe(server.stop(), loop)
        with contextlib.suppress(Exception):
            future.result(timeout=60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        if not loop.is_running():
            loop.close()
