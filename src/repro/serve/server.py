"""The measurement-as-a-service HTTP server (stdlib asyncio only).

``ExperimentServer`` turns the repository's headline experiments into a
long-lived JSON-over-HTTP service.  A request's life:

1. **Parse + validate** (event loop, microseconds).  Unknown routes,
   experiments, or parameters are rejected before touching any budget.
2. **Coalesce** — if an identical computation (same content key) is
   already in flight, the request joins it (:class:`Singleflight`) and
   costs nothing.
3. **Hot path** — a :class:`~repro.exec.cache.ResultCache` lookup in a
   helper thread; a hit is served without queueing.
4. **Admission** — the cold path must win a bounded in-flight slot
   (:class:`AdmissionController`); when the budget is exhausted the
   request gets an immediate ``429`` with ``Retry-After`` instead of an
   unbounded queue.
5. **Compute** — on the sharded :class:`~repro.serve.workers.WorkerPool`
   tier (``workers=N``: consistent-hash routing by cache key, shared
   on-disk cache, shm result transport, receipts), or on the legacy
   single :class:`~repro.exec.runner.SweepRunner` pool (``workers=0``).
   Every computation leaves a :mod:`~repro.serve.registry` receipt that
   ``POST /v1/replay`` can recompute and digest-check.

Responses for an experiment are canonical JSON (sorted keys, fixed
separators) of ``{experiment, params, value}``.  The worker tier ships
the *value*'s canonical bytes (often via shared memory) and the server
splices them into the envelope, so the bytes are identical whether a
given response was computed by a worker, computed by the legacy pool,
coalesced, or a cache hit — a property the end-to-end tests assert.

``stop()`` drains gracefully: the listener closes first, in-flight
requests (and their computations) finish, then the compute tier shuts
down.  ``POST /v1/workers/restart`` rolls the worker pool one process
at a time *without* stopping the server.

HTTP handling is deliberately minimal — HTTP/1.1, one request per
connection, ``Connection: close`` — because the server's clients are
programmatic (:mod:`repro.serve.client`, curl, load generators), not
browsers.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import threading
import time
from pathlib import Path

from repro.exec import ResultCache, SweepRunner, cache_key
from repro.exec.cache import _jsonify
from repro.serve.coalesce import AdmissionController, Singleflight
from repro.serve.experiments import (EXPERIMENTS, ExperimentRequestError,
                                     cache_payload, describe_experiments,
                                     engine_param, normalize,
                                     run_experiment)
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import RunRegistry
from repro.serve.shm import SHM_MIN_BYTES
from repro.serve.streams import StreamBook, StreamError
from repro.serve.workers import (NoLiveWorkersError, WorkerPool,
                                 WorkerResult, warm_imports)
from repro.units import MIB

#: Default bound on concurrently admitted (cold) computations.
DEFAULT_MAX_INFLIGHT = 8

#: Reject request bodies larger than this (bytes).
MAX_BODY_BYTES = MIB

_REQUEST_TIMEOUT_S = 30.0

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}

_MISS = object()


def canonical_json(value) -> bytes:
    """Deterministic JSON bytes (sorted keys, tight separators)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=_jsonify).encode()


def splice_envelope(name: str, params: dict, value_bytes: bytes) -> bytes:
    """The response envelope with pre-serialized value bytes spliced in.

    Byte-identical to ``canonical_json({"experiment": name, "params":
    params, "value": value})`` when ``value_bytes == canonical_json(
    value)`` — the keys are already in sorted order — so worker-tier
    responses never re-serialize the payload, yet compare equal to the
    single-process tier's.
    """
    return (b'{"experiment":' + canonical_json(name)
            + b',"params":' + canonical_json(params)
            + b',"value":' + value_bytes + b"}")


class _HttpError(Exception):
    """Internal: carries an HTTP status + JSON error payload."""

    def __init__(self, status: int, message: str, **extra):
        super().__init__(message)
        self.status = status
        self.payload = {"error": message, **extra}


class ExperimentServer:
    """Serve the registry's experiments over HTTP on one event loop.

    ``workers=0`` (default) computes on one persistent ``SweepRunner``
    pool; ``workers=N`` runs the sharded multi-process worker tier.
    With a ``cache_dir``, receipts default to ``<cache_dir>/
    receipts.jsonl`` (durable); otherwise they live in memory.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 jobs: int = 1, cache_dir=None,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 workers: int = 0, registry_path=None,
                 shm_min_bytes: int = SHM_MIN_BYTES):
        self.host = host
        self.port = port                      # 0 = ephemeral; set on start
        self.cache = ResultCache(cache_dir) if cache_dir else None
        if workers > 0:
            self.pool = WorkerPool(workers, cache_dir=cache_dir,
                                   shm_min_bytes=shm_min_bytes)
            self.runner = None
        else:
            self.pool = None
            self.runner = SweepRunner(jobs, persistent=True,
                                      initializer=warm_imports)
        if registry_path is None and cache_dir is not None:
            registry_path = Path(cache_dir) / "receipts.jsonl"
        self.registry = RunRegistry(registry_path)
        self.metrics = ServeMetrics()
        self.streams = StreamBook()
        self.flights = Singleflight()
        self.admission = AdmissionController(max_inflight)
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._open_handlers = 0
        self._handlers_idle: asyncio.Event | None = None
        self._restart_task: asyncio.Task | None = None

    # ---------------------------------------------------------------- setup

    async def start(self) -> None:
        """Bind and start accepting (resolves ``self.port`` if it was 0)."""
        self._handlers_idle = asyncio.Event()
        self._handlers_idle.set()
        if self.pool is not None:
            await asyncio.to_thread(self.pool.start)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def stop(self, drain_timeout: float = 30.0) -> None:
        """Graceful drain: stop accepting, finish in-flight work, close."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(self._handlers_idle.wait(),
                                   drain_timeout)
        if self._restart_task is not None:
            with contextlib.suppress(Exception):
                await self._restart_task
        if self.pool is not None:
            await asyncio.to_thread(self.pool.close)
        else:
            self.runner.close()

    # ------------------------------------------------------------- protocol

    async def _handle_connection(self, reader, writer) -> None:
        self._open_handlers += 1
        self._handlers_idle.clear()
        started = time.monotonic()
        self.metrics.inflight_requests += 1
        status, body = 500, b"{}"
        try:
            try:
                method, target, headers = await asyncio.wait_for(
                    self._read_head(reader), _REQUEST_TIMEOUT_S)
                payload = await asyncio.wait_for(
                    self._read_body(reader, headers), _REQUEST_TIMEOUT_S)
                status, body = await self._route(method, target, payload)
            except _HttpError as exc:
                status, body = exc.status, canonical_json(exc.payload)
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                    asyncio.TimeoutError, UnicodeDecodeError):
                status, body = 400, canonical_json(
                    {"error": "malformed HTTP request"})
            except (ConnectionResetError, BrokenPipeError):
                status = 499            # client went away; nothing to write
                return
            except Exception as exc:        # unexpected: 500, count it
                self.metrics.errors += 1
                status, body = 500, canonical_json(
                    {"error": f"internal error: {exc}"})
            await self._write_response(writer, status, body)
        finally:
            self.metrics.inflight_requests -= 1
            self.metrics.note_response(status, time.monotonic() - started)
            self._open_handlers -= 1
            if self._open_handlers == 0:
                self._handlers_idle.set()

    async def _read_head(self, reader) -> tuple:
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    async def _read_body(self, reader, headers: dict) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        return await reader.readexactly(length) if length > 0 else b""

    async def _write_response(self, writer, status: int,
                              body: bytes) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n")
        if status in (429, 503):
            head += "Retry-After: 1\r\n"
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            writer.write(head.encode("latin-1") + b"\r\n" + body)
            await writer.drain()
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()

    # -------------------------------------------------------------- routing

    async def _route(self, method: str, target: str,
                     payload: bytes) -> tuple:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self.metrics.note_request("healthz")
            self._require(method, "GET")
            return 200, canonical_json(self._health())
        if path == "/metricz":
            self.metrics.note_request("metricz")
            self._require(method, "GET")
            return 200, canonical_json(self._metricz())
        if path == "/v1/experiments":
            self.metrics.note_request("experiments")
            self._require(method, "GET")
            return 200, canonical_json(describe_experiments())
        if path == "/v1/receipts":
            self.metrics.note_request("receipts")
            self._require(method, "GET")
            return 200, canonical_json(
                {"recorded": self.registry.count,
                 "receipts": self.registry.recent()})
        if path == "/v1/replay":
            self.metrics.note_request("replay")
            self._require(method, "POST")
            return 200, await self._replay_response(payload)
        if path == "/v1/streams":
            self.metrics.note_request("streams")
            self._require(method, "GET")
            return 200, canonical_json(self.streams.listing())
        if path.startswith("/v1/streams/"):
            return await self._stream_route(method, path, payload)
        if path == "/v1/workers/restart":
            self.metrics.note_request("workers-restart")
            self._require(method, "POST")
            return 200, canonical_json(self._start_rolling_restart())
        if path.startswith("/v1/experiments/"):
            name = path[len("/v1/experiments/"):]
            self.metrics.note_request(name)
            self._require(method, "POST")
            if name not in EXPERIMENTS:
                raise _HttpError(
                    404, f"unknown experiment {name!r}",
                    known=sorted(EXPERIMENTS))
            return 200, await self._experiment_response(name, payload)
        raise _HttpError(404, f"no route for {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    def _health(self) -> dict:
        return {"status": "draining" if self._draining else "ok",
                "inflight_requests": self.metrics.inflight_requests,
                "inflight_computations": self.admission.active,
                "experiments": len(EXPERIMENTS),
                "tier": "workers" if self.pool is not None else "single",
                "workers": (self.pool.live_workers
                            if self.pool is not None else 0)}

    def _metricz(self) -> dict:
        snapshot = self.metrics.snapshot()
        snapshot["registry"] = {"receipts": self.registry.count,
                                "durable": self.registry.path is not None}
        snapshot["streams"] = self.streams.listing()
        if self.pool is not None:
            snapshot["workers"] = self.pool.stats()
        return snapshot

    def _start_rolling_restart(self) -> dict:
        if self.pool is None:
            raise _HttpError(
                400, "single-process tier has no workers to restart; "
                     "start the server with workers >= 1")
        if self._restart_task is not None and not self._restart_task.done():
            raise _HttpError(409, "a rolling restart is already running")
        self._restart_task = asyncio.get_running_loop().create_task(
            asyncio.to_thread(self.pool.rolling_restart))
        return {"status": "restarting", "workers": self.pool.size}

    # ------------------------------------------------------- trace streams

    async def _stream_route(self, method: str, path: str,
                            payload: bytes) -> tuple:
        """``/v1/streams/{name}`` and ``/v1/streams/{name}/observe``.

        Stream mutations run inline on the event loop: an observe is a
        handful of dict merges over at most a few hundred log buckets,
        orders of magnitude cheaper than the JSON parse that precedes
        it, so no thread hop is warranted.
        """
        tail = path[len("/v1/streams/"):]
        name, _, action = tail.partition("/")
        if not name or "/" in action:
            raise _HttpError(404, f"no route for {path!r}")
        self.metrics.note_request("streams")
        try:
            if action == "observe":
                self._require(method, "POST")
                return 200, canonical_json(self._stream_observe(name,
                                                                payload))
            if action:
                raise _HttpError(
                    404, f"unknown stream action {action!r}; use observe")
            if method == "DELETE":
                return 200, canonical_json(self.streams.delete(name))
            self._require(method, "GET")
            return 200, canonical_json(self.streams.summary(name))
        except StreamError as exc:
            raise _HttpError(exc.status, str(exc)) from None

    def _stream_observe(self, name: str, payload: bytes) -> dict:
        try:
            raw = json.loads(payload.decode()) if payload else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise _HttpError(400, "request body must be JSON") from None
        if not isinstance(raw, dict):
            raise _HttpError(400, "observation must be a JSON object")
        unknown = sorted(set(raw) - {"window", "window_s", "digest",
                                     "values_s", "counters"})
        if unknown:
            raise _HttpError(
                400, f"unknown observation field(s) {', '.join(unknown)}")
        if "window" not in raw:
            raise _HttpError(400, "observation wants a window index")
        window_s = raw.get("window_s", 1.0)
        if isinstance(window_s, bool) or \
                not isinstance(window_s, (int, float)):
            raise _HttpError(400, "window_s must be a number")
        return self.streams.observe(
            name, raw["window"], window_s=float(window_s),
            digest_state=raw.get("digest"), values_s=raw.get("values_s"),
            counters=raw.get("counters"))

    # ----------------------------------------------------- experiment paths

    async def _experiment_response(self, name: str,
                                   payload: bytes) -> bytes:
        try:
            raw = json.loads(payload.decode()) if payload else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise _HttpError(400, "request body must be JSON") from None
        try:
            params = normalize(name, raw)
        except ExperimentRequestError as exc:
            raise _HttpError(400, str(exc)) from None
        # mesh experiments key on the mesh kernel's fingerprint (so a
        # FASTMESH_VERSION bump invalidates exactly the batched entries);
        # device experiments key on the measurement engine's
        key = cache_key(f"serve:{name}", cache_payload(name, params),
                        engine=engine_param(name, params))
        value = await self._resolve(name, params, key)
        if isinstance(value, WorkerResult):
            return splice_envelope(name, params, value.value_bytes)
        return splice_envelope(name, params, canonical_json(value))

    async def _resolve(self, name: str, params: dict, key: str):
        """Coalesce -> cache -> admission -> compute, in that order."""
        flight = self.flights.leader_for(key)
        if flight is not None:
            value = await asyncio.shield(flight)
            self.metrics.coalesced += 1
            return value
        if self.cache is not None:
            value = await asyncio.to_thread(self.cache.get, key, _MISS)
            if value is not _MISS:
                self.metrics.cache_hits += 1
                return value
            self.metrics.cache_misses += 1
            # the cache lookup awaited: an identical request may have
            # started a flight meanwhile — join it rather than race it
            flight = self.flights.leader_for(key)
            if flight is not None:
                value = await asyncio.shield(flight)
                self.metrics.coalesced += 1
                return value
        if self._draining:
            raise _HttpError(503, "server is draining")
        if not self.admission.try_acquire():
            self.metrics.rejected += 1
            raise _HttpError(
                429, "server at capacity",
                inflight=self.admission.active,
                limit=self.admission.limit)
        value, led = await self.flights.run(
            key, lambda: self._compute(name, params, key))
        if not led:                        # lost the registration race
            self.admission.release()
            self.metrics.coalesced += 1
        return value

    async def _compute(self, name: str, params: dict,
                       key: str) -> WorkerResult:
        started = time.monotonic()
        self.metrics.inflight_computations += 1
        try:
            result = await self._dispatch(name, params, key)
            self.metrics.computations += 1
            if result.transport == "shm":
                self.metrics.shm_results += 1
            else:
                self.metrics.inline_results += 1
            await asyncio.to_thread(self._record_receipt, name, params,
                                    key, result)
            return result
        finally:
            self.metrics.inflight_computations -= 1
            self.metrics.compute_latency.add(time.monotonic() - started)
            self.admission.release()

    async def _dispatch(self, name: str, params: dict,
                        key: str) -> WorkerResult:
        """Run the computation on whichever tier this server owns."""
        if self.pool is not None:
            try:
                future = self.pool.submit(name, params, key)
            except NoLiveWorkersError:
                raise _HttpError(
                    503, "every worker shard is draining; retry") from None
            return await asyncio.wrap_future(future)
        started = time.perf_counter()
        future = self.runner.submit(run_experiment, (name, params))
        value = await asyncio.wrap_future(future)
        value_bytes = canonical_json(value)
        wall_ms = (time.perf_counter() - started) * 1e3
        if self.cache is not None:
            await asyncio.to_thread(self.cache.put_bytes, key,
                                    value_bytes)
        return WorkerResult(
            value_bytes=value_bytes,
            digest=hashlib.sha256(value_bytes).hexdigest(),
            worker="local", wall_ms=wall_ms, transport="pickle")

    def _record_receipt(self, name: str, params: dict, key: str,
                        result: WorkerResult) -> None:
        engine = engine_param(name, params)
        fingerprint = None
        if engine is not None:
            from repro.engines import fingerprint_for
            fingerprint = fingerprint_for(engine)
        self.registry.record(
            experiment=name, params=params, key=key, engine=fingerprint,
            worker=result.worker, wall_ms=result.wall_ms,
            digest=result.digest, transport=result.transport)

    # --------------------------------------------------------------- replay

    async def _replay_response(self, payload: bytes) -> bytes:
        """Recompute a receipt's experiment; compare result digests."""
        try:
            raw = json.loads(payload.decode()) if payload else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise _HttpError(400, "request body must be JSON") from None
        if not isinstance(raw, dict) or \
                ("request_sha" in raw) == ("seq" in raw):
            raise _HttpError(
                400, "replay wants exactly one of request_sha / seq")
        receipt = self.registry.find(
            request_sha=raw.get("request_sha"), seq=raw.get("seq"))
        if receipt is None:
            raise _HttpError(404, "no receipt matches that request")
        name, params = receipt["experiment"], receipt["params"]
        if name not in EXPERIMENTS:
            raise _HttpError(
                400, f"receipt names unknown experiment {name!r}")
        if self._draining:
            raise _HttpError(503, "server is draining")
        if not self.admission.try_acquire():
            self.metrics.rejected += 1
            raise _HttpError(429, "server at capacity",
                             inflight=self.admission.active,
                             limit=self.admission.limit)
        try:
            result = await self._dispatch(name, params, receipt["key"])
        finally:
            self.admission.release()
        self.metrics.replays += 1
        return canonical_json({
            "seq": receipt["seq"],
            "request_sha": receipt["request_sha"],
            "experiment": name,
            "match": result.digest == receipt["result_sha"],
            "result_sha": receipt["result_sha"],
            "recomputed_sha": result.digest,
            "recorded_worker": receipt["worker"],
            "replayed_worker": result.worker,
        })


# --------------------------------------------------------------------------
# embedding helper: run a server on a background thread (tests, benchmarks)
# --------------------------------------------------------------------------

@contextlib.contextmanager
def serve_in_thread(**kwargs):
    """Run an :class:`ExperimentServer` on a daemon thread; yield it.

    The server is started before the body runs (``server.port`` is the
    bound ephemeral port) and gracefully drained afterwards.  This is
    how the test suite and the load benchmark embed the service without
    shelling out.
    """
    server = ExperimentServer(**kwargs)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    boot_error: list = []

    def _run():
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:       # surface bind failures
            boot_error.append(exc)
            ready.set()
            return
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    ready.wait(timeout=120)
    if boot_error:
        loop.close()
        raise boot_error[0]
    try:
        yield server
    finally:
        future = asyncio.run_coroutine_threadsafe(server.stop(), loop)
        with contextlib.suppress(Exception):
            future.result(timeout=120)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        if not loop.is_running():
            loop.close()
