"""Measurement-as-a-service layer: async HTTP serving of experiments.

Turns the repository from a library+CLI into a long-lived service: a
stdlib-only asyncio JSON-over-HTTP server (:mod:`~repro.serve.server`)
exposes the paper's headline experiments as typed endpoints
(:mod:`~repro.serve.experiments`), with singleflight request coalescing
and bounded-admission backpressure (:mod:`~repro.serve.coalesce`), live
counters and streaming latency quantiles (:mod:`~repro.serve.metrics`),
and a blocking stdlib client (:mod:`~repro.serve.client`).

Computations run on one of two tiers.  The default (``workers=0``) is a
single persistent process pool.  ``workers=N`` enables the sharded
worker tier (:mod:`~repro.serve.workers`): N spawned worker processes,
each owning a consistent-hash shard of the cache-key space, sharing the
content-addressed on-disk cache, shipping large results back through
POSIX shared memory (:mod:`~repro.serve.shm`), and surviving crashes
and rolling restarts without dropping requests.  Every computation on
either tier leaves a durable receipt (:mod:`~repro.serve.registry`)
that ``POST /v1/replay`` can recompute and digest-check.

Start one from a shell::

    python -m repro serve --port 8737 --workers 4 --cache ~/.cache/repro

or embed one in-process::

    from repro.serve import ServeClient, serve_in_thread

    with serve_in_thread(workers=2, cache_dir="/tmp/repro-cache") as server:
        client = ServeClient(port=server.port)
        reply = client.experiment("latency-matrix", gpu="V100", seed=0)
        matrix = reply.value()["matrix"]
"""

from repro.serve.client import (AsyncServeClient, Backoff, ServeClient,
                                ServeClientError, ServeDeadlineError,
                                ServeReply)
from repro.serve.coalesce import AdmissionController, Singleflight
from repro.serve.experiments import (EXPERIMENTS, Experiment,
                                     ExperimentRequestError, Param,
                                     cache_payload, describe_experiments,
                                     engine_param, normalize,
                                     run_experiment)
from repro.serve.metrics import ServeMetrics, StreamingDigest
from repro.serve.registry import RunRegistry, request_sha, result_sha
from repro.serve.server import (DEFAULT_MAX_INFLIGHT, ExperimentServer,
                                canonical_json, serve_in_thread,
                                splice_envelope)
from repro.serve.shm import SHM_MIN_BYTES, ShmRef, ShmTransportError
from repro.serve.streams import StreamBook, StreamError, TraceStream
from repro.serve.workers import (HashRing, NoLiveWorkersError, WorkerPool,
                                 WorkerResult, warm_imports)

__all__ = [
    "AsyncServeClient", "Backoff", "ServeClient", "ServeClientError",
    "ServeDeadlineError", "ServeReply",
    "AdmissionController", "Singleflight",
    "EXPERIMENTS", "Experiment", "ExperimentRequestError", "Param",
    "cache_payload", "describe_experiments", "engine_param", "normalize",
    "run_experiment",
    "ServeMetrics", "StreamingDigest",
    "RunRegistry", "request_sha", "result_sha",
    "DEFAULT_MAX_INFLIGHT", "ExperimentServer", "canonical_json",
    "serve_in_thread", "splice_envelope",
    "SHM_MIN_BYTES", "ShmRef", "ShmTransportError",
    "StreamBook", "StreamError", "TraceStream",
    "HashRing", "NoLiveWorkersError", "WorkerPool", "WorkerResult",
    "warm_imports",
]
