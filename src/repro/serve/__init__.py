"""Measurement-as-a-service layer: async HTTP serving of experiments.

Turns the repository from a library+CLI into a long-lived service: a
stdlib-only asyncio JSON-over-HTTP server (:mod:`~repro.serve.server`)
exposes the paper's headline experiments as typed endpoints
(:mod:`~repro.serve.experiments`), with singleflight request coalescing
and bounded-admission backpressure (:mod:`~repro.serve.coalesce`), live
counters and streaming latency quantiles (:mod:`~repro.serve.metrics`),
and a blocking stdlib client (:mod:`~repro.serve.client`).

Start one from a shell::

    python -m repro serve --port 8737 --jobs 4 --cache ~/.cache/repro

or embed one in-process::

    from repro.serve import ServeClient, serve_in_thread

    with serve_in_thread(jobs=2, cache_dir="/tmp/repro-cache") as server:
        client = ServeClient(port=server.port)
        reply = client.experiment("latency-matrix", gpu="V100", seed=0)
        matrix = reply.value()["matrix"]
"""

from repro.serve.client import ServeClient, ServeClientError, ServeReply
from repro.serve.coalesce import AdmissionController, Singleflight
from repro.serve.experiments import (EXPERIMENTS, Experiment,
                                     ExperimentRequestError, Param,
                                     cache_payload, describe_experiments,
                                     normalize, run_experiment)
from repro.serve.metrics import ServeMetrics, StreamingDigest
from repro.serve.server import (DEFAULT_MAX_INFLIGHT, ExperimentServer,
                                canonical_json, serve_in_thread)

__all__ = [
    "ServeClient", "ServeClientError", "ServeReply",
    "AdmissionController", "Singleflight",
    "EXPERIMENTS", "Experiment", "ExperimentRequestError", "Param",
    "cache_payload", "describe_experiments", "normalize",
    "run_experiment",
    "ServeMetrics", "StreamingDigest",
    "DEFAULT_MAX_INFLIGHT", "ExperimentServer", "canonical_json",
    "serve_in_thread",
]
