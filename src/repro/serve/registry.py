"""Run registry: durable per-request receipts for audit and replay.

Every computation the serve tier performs leaves a **receipt** — a
small JSON record binding the request to what produced its answer:

* ``request_sha`` — SHA-256 over the canonical JSON of
  ``{experiment, params}`` (the normalized request envelope, so two
  spellings of one request share a hash);
* ``key`` — the engine-version-fingerprinted cache key the result was
  stored under (:func:`repro.exec.cache.cache_key`);
* ``engine`` — the engine fingerprint dict (name + version for the
  fast engines), pinned at computation time;
* ``worker`` — which worker process computed it (``"local"`` for the
  legacy single-pool tier);
* ``result_sha`` — SHA-256 over the canonical JSON bytes of the result
  value;
* ``wall_ms``, ``transport``, ``ts``, ``seq`` — timing, how the bytes
  travelled (``inline``/``shm``/``pickle``), and ordering.

Receipts answer two operational questions.  *Audit*: which worker and
engine revision produced this response, and how long did it take?
*Replay*: recompute the experiment from the receipt's normalized
params and compare ``result_sha`` — a byte-level determinism check of
the whole stack, exposed as ``POST /v1/replay``.

With a ``path`` the registry is durable: one canonical-JSON line per
receipt, appended + flushed + fsync'd before the caller proceeds, and
reloaded on construction so sequence numbers and replayability survive
a restart.  With ``path=None`` it keeps a bounded in-memory ring
(tests, caches-off servers).
"""

from __future__ import annotations

import collections
import hashlib
import json
import os
import threading
import time
from pathlib import Path

from repro.errors import ConfigurationError

#: In-memory receipts retained for ``recent()``/``find()`` lookups;
#: the on-disk log keeps everything.
DEFAULT_KEEP = 1024


def _canonical(value) -> bytes:
    from repro.exec.cache import _jsonify
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=_jsonify).encode()


def request_sha(experiment: str, params: dict) -> str:
    """Hash of the normalized request envelope (experiment + params)."""
    return hashlib.sha256(
        _canonical({"experiment": experiment, "params": params})).hexdigest()


def result_sha(value_bytes: bytes) -> str:
    """Hash of a result's canonical JSON bytes."""
    return hashlib.sha256(value_bytes).hexdigest()


class RunRegistry:
    """Append-only receipt log with replay lookups.

    Thread-safe: the serve front-end records receipts from
    ``asyncio.to_thread`` workers while ``/v1/receipts`` readers take
    snapshots.
    """

    def __init__(self, path=None, keep: int = DEFAULT_KEEP):
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        self.path = Path(path) if path else None
        self._lock = threading.Lock()
        self._recent: collections.deque = collections.deque(maxlen=keep)
        self._seq = 0
        self.recorded = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._reload()

    def _reload(self) -> None:
        """Recover seq + recent receipts from an existing log file."""
        try:
            lines = self.path.read_text().splitlines()
        except FileNotFoundError:
            return
        for line in lines:
            try:
                receipt = json.loads(line)
            except json.JSONDecodeError:
                continue                  # torn tail line: skip, keep going
            if isinstance(receipt, dict) and "seq" in receipt:
                self._recent.append(receipt)
                self._seq = max(self._seq, int(receipt["seq"]))

    @property
    def count(self) -> int:
        """Receipts recorded by this instance (not the reloaded ones)."""
        return self.recorded

    def record(self, *, experiment: str, params: dict, key: str,
               engine, worker: str, wall_ms: float,
               digest: str, transport: str) -> dict:
        """Append one receipt; returns it with ``seq``/``ts`` filled."""
        with self._lock:
            self._seq += 1
            receipt = {
                "seq": self._seq,
                "ts": time.time(),
                "experiment": experiment,
                "params": params,
                "request_sha": request_sha(experiment, params),
                "key": key,
                "engine": engine,
                "worker": worker,
                "wall_ms": round(float(wall_ms), 3),
                "result_sha": digest,
                "transport": transport,
            }
            self._recent.append(receipt)
            self.recorded += 1
            if self.path is not None:
                self._append_line(receipt)
        return receipt

    def _append_line(self, receipt: dict) -> None:
        """Durable append: the receipt is on disk before we return."""
        line = _canonical(receipt) + b"\n"
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line)
            os.fsync(fd)
        finally:
            os.close(fd)

    def recent(self, n: int = 50) -> list:
        """The last ``n`` receipts, newest last."""
        with self._lock:
            receipts = list(self._recent)
        return receipts[-n:]

    def find(self, *, request_sha: str | None = None,
             seq: int | None = None) -> dict | None:
        """Latest receipt matching ``request_sha`` or exact ``seq``."""
        if (request_sha is None) == (seq is None):
            raise ConfigurationError(
                "find() wants exactly one of request_sha / seq")
        with self._lock:
            receipts = list(self._recent)
        for receipt in reversed(receipts):
            if seq is not None and receipt.get("seq") == seq:
                return receipt
            if request_sha is not None \
                    and receipt.get("request_sha") == request_sha:
                return receipt
        if self.path is not None:
            return self._scan_file(request_sha=request_sha, seq=seq)
        return None

    def _scan_file(self, *, request_sha, seq) -> dict | None:
        """Fallback for receipts older than the in-memory window."""
        try:
            lines = self.path.read_text().splitlines()
        except FileNotFoundError:
            return None
        for line in reversed(lines):
            try:
                receipt = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(receipt, dict):
                continue
            if seq is not None and receipt.get("seq") == seq:
                return receipt
            if request_sha is not None \
                    and receipt.get("request_sha") == request_sha:
                return receipt
        return None
