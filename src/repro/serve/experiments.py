"""Typed registry of the experiments ``repro.serve`` exposes.

Each entry pairs a declarative parameter schema with a module-level
compute function, which buys three properties the server needs:

* **Validation at the edge.**  :func:`normalize` rejects unknown
  experiments/parameters and wrong types with a
  :class:`ExperimentRequestError` *before* anything is queued, so a bad
  request costs microseconds, not a pool slot.
* **Canonical parameters.**  Normalization fills every default and
  coerces types, so two requests that mean the same computation produce
  the same params dict — the requirement for request coalescing and
  cache addressing to work ("sms omitted" and "sms: null" must hash
  identically).
* **Picklable dispatch.**  :func:`run_experiment` is a plain
  module-level function of ``(name, params)``; the server ships it to a
  :class:`~repro.exec.runner.SweepRunner` pool worker untouched.

Results are plain JSON values (lists/dicts/floats); the cache payload of
gpu-bound experiments folds in the full spec dict so editing a spec
invalidates served entries exactly like it invalidates report sections.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import engines as engine_registry
from repro.errors import ReproError

#: Report sections servable via the ``report-section`` experiment.
REPORT_SECTIONS = ("latency", "bandwidth", "mesh-bottleneck",
                   "mesh-fairness-rr", "mesh-fairness-age")

_GPU_NAMES = ("V100", "A100", "H100")


class ExperimentRequestError(ReproError):
    """A request named an unknown experiment or carried bad parameters."""


@dataclass(frozen=True)
class Param:
    """One declared request parameter."""
    name: str
    kind: str                 # "gpu" | "int" | "bool" | "str" | "int-list"
    default: object = None
    choices: tuple = ()
    doc: str = ""


@dataclass(frozen=True)
class Experiment:
    """A servable experiment: schema + picklable compute function."""
    name: str
    summary: str
    fn: object                # module-level callable(params) -> JSON value
    params: tuple = field(default_factory=tuple)

    def describe(self) -> dict:
        return {"name": self.name, "summary": self.summary,
                "params": [{"name": p.name, "kind": p.kind,
                            "default": p.default,
                            **({"choices": list(p.choices)}
                               if p.choices else {})}
                           for p in self.params]}


def _coerce(experiment: str, param: Param, value):
    """Validate/coerce one raw value against its declaration."""
    where = f"{experiment}.{param.name}"
    if value is None:
        return None
    if param.kind == "gpu":
        if not isinstance(value, str) or value.upper() not in _GPU_NAMES:
            raise ExperimentRequestError(
                f"{where} must be one of {', '.join(_GPU_NAMES)}")
        return value.upper()
    if param.kind == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise ExperimentRequestError(f"{where} must be an integer")
        return value
    if param.kind == "bool":
        if not isinstance(value, bool):
            raise ExperimentRequestError(f"{where} must be true/false")
        return value
    if param.kind == "str":
        if not isinstance(value, str):
            raise ExperimentRequestError(f"{where} must be a string")
        if param.choices and value not in param.choices:
            raise ExperimentRequestError(
                f"{where} must be one of {', '.join(param.choices)}")
        return value
    if param.kind == "int-list":
        if not isinstance(value, list) or any(
                isinstance(v, bool) or not isinstance(v, int)
                for v in value):
            raise ExperimentRequestError(
                f"{where} must be a list of integers")
        return list(value)
    if param.kind == "float-list":
        if not isinstance(value, list) or any(
                isinstance(v, bool) or not isinstance(v, (int, float))
                for v in value):
            raise ExperimentRequestError(
                f"{where} must be a list of numbers")
        return [float(v) for v in value]
    raise ExperimentRequestError(f"{where}: undeclared kind {param.kind!r}")


def normalize(name: str, raw: dict) -> dict:
    """Canonical params for ``name`` (defaults filled, types checked)."""
    experiment = EXPERIMENTS.get(name)
    if experiment is None:
        raise ExperimentRequestError(
            f"unknown experiment {name!r}; serve knows "
            f"{', '.join(sorted(EXPERIMENTS))}")
    if not isinstance(raw, dict):
        raise ExperimentRequestError(
            f"{name}: parameters must be a JSON object")
    declared = {p.name: p for p in experiment.params}
    unknown = sorted(set(raw) - set(declared))
    if unknown:
        raise ExperimentRequestError(
            f"{name}: unknown parameter(s) {', '.join(unknown)}; "
            f"declared: {', '.join(declared) or '(none)'}")
    params = {}
    for param in experiment.params:
        value = raw.get(param.name, param.default)
        params[param.name] = _coerce(name, param, value)
    return params


# --------------------------------------------------------------------------
# compute functions — module-level, picklable, JSON in / JSON out
# --------------------------------------------------------------------------

def _device(params):
    from repro.gpu.device import SimulatedGPU
    return SimulatedGPU(params["gpu"], seed=params["seed"])


def _latency_matrix(params) -> dict:
    """The paper's SM x slice hit-latency matrix (Fig 1/2/3 input)."""
    from repro.core.latency_bench import measured_latency_matrix
    gpu = _device(params)
    sms = params["sms"] if params["sms"] is not None else gpu.hier.all_sms
    matrix = measured_latency_matrix(gpu, sms=params["sms"],
                                     samples=params["samples"],
                                     engine=params["engine"])
    return {"gpu": gpu.name, "sms": list(sms),
            "num_slices": gpu.num_slices,
            "matrix": matrix.tolist(),
            "min": float(matrix.min()), "mean": float(matrix.mean()),
            "max": float(matrix.max())}


def _bandwidth_distribution(params) -> dict:
    """Per-SM solo bandwidth to one slice (Fig 9b/13 distribution)."""
    from repro.core.bandwidth_bench import slice_bandwidth_distribution
    gpu = _device(params)
    sms = params["sms"] if params["sms"] is not None else gpu.hier.all_sms
    values = slice_bandwidth_distribution(gpu, params["slice"],
                                          sms=params["sms"],
                                          engine=params["engine"])
    return {"gpu": gpu.name, "slice": params["slice"], "sms": list(sms),
            "gbps": values.tolist(),
            "min": float(values.min()), "mean": float(values.mean()),
            "max": float(values.max())}


def _speedup_table(params) -> dict:
    """Input-speedup rows per hierarchy level and access kind (Fig 10)."""
    from repro.core.speedup_bench import measure_speedups
    gpu = _device(params)
    rows = [{"level": m.level, "kind": m.kind.value,
             "sms_used": m.sms_used, "required": m.required,
             "bandwidth_gbps": m.bandwidth_gbps,
             "speedup": m.speedup,
             "fraction_of_full": m.fraction_of_full}
            for m in measure_speedups(gpu, gpc=params["gpc"],
                                      engine=params["engine"])]
    return {"gpu": gpu.name, "gpc": params["gpc"], "rows": rows}


def _observations(params) -> dict:
    """All twelve paper observations checked on the Table I devices."""
    from repro.core.observations import check_all_observations
    results = check_all_observations(seed=params["seed"])
    import json

    from repro.exec.cache import _jsonify

    # evidence values mix floats, numpy scalars, lists and sub-dicts;
    # round-trip through the cache's JSON fallback to plain types
    evidence = [json.loads(json.dumps(r.evidence, default=_jsonify))
                for r in results]
    return {"passed": sum(r.holds for r in results),
            "total": len(results),
            "observations": [{"number": r.number,
                              "statement": r.statement,
                              "holds": bool(r.holds),
                              "evidence": ev}
                             for r, ev in zip(results, evidence)]}


def _mesh_load_sweep(params) -> dict:
    """Load-latency curve of the 2-D mesh (Fig 22/23 input).

    The default ``mesh_engine="batched"`` runs every injection rate as
    one lockstep fastmesh simulation; results are bit-identical to the
    per-rate scalar ``Mesh2D`` runs.  Infinite latency (a point that
    delivered nothing) is encoded as JSON ``null``.
    """
    from repro.noc.mesh.loadcurve import sweep_load
    curve = sweep_load(params["rates"], arbiter=params["arbiter"],
                       cycles=params["cycles"], warmup=params["warmup"],
                       seed=params["seed"], engine=params["mesh_engine"])
    inf = float("inf")
    saturation = curve.saturation_rate()
    return {"arbiter": curve.arbiter,
            "points": [{"offered_rate": p.offered_rate,
                        "accepted_rate": p.accepted_rate,
                        "avg_latency": (p.avg_latency
                                        if p.avg_latency != inf else None)}
                       for p in curve.points],
            "saturation_rate": saturation if saturation != inf else None}


def _mesh_vc_sweep(params) -> dict:
    """Shared request/reply VC grid on the credit-based wormhole mesh.

    The default ``mesh_engine="batched"`` runs the full VC-count x
    buffer-depth x credit-latency x seed grid as ONE lockstep
    :class:`~repro.noc.mesh.vcmesh_batched.BatchedVCMesh` simulation,
    bit-identical to looping the scalar golden model.  An empty
    ``rates`` list means greedy backlog-limited sources.
    """
    from repro.noc.mesh.vc import sweep_vc_grid
    rates = tuple(params["rates"]) if params["rates"] else (None,)
    results = sweep_vc_grid(
        vc_counts=tuple(params["vc_counts"]),
        buffer_depths=tuple(params["buffer_depths"]),
        credit_latencies=tuple(params["credit_latencies"]),
        injection_rates=rates, seeds=tuple(params["seeds"]),
        cycles=params["cycles"], reply_flits=params["reply_flits"],
        window=params["window"], engine=params["mesh_engine"])
    return {"grid": [r.to_json() for r in results]}


def _sidechannel_probe(params) -> dict:
    """One attacker probe batch under a chosen CTA scheduler.

    The unit of attacker work for the multi-tenant defence-under-load
    scenarios (:mod:`repro.traffic.scenarios`): the ``batch`` index
    makes successive probes distinct computations, so each one pays the
    full admission + compute path like any other tenant's request —
    probes lost to 429s or deadlines cost the attacker samples.
    """
    if params["attack"] == "rsa":
        from repro.sidechannel.probe import rsa_probe_batch
        return rsa_probe_batch(params["gpu"], params["seed"],
                               params["scheduler"], params["batch"],
                               samples_per_point=params["samples_per_point"],
                               ladder_width=params["ladder_width"])
    from repro.sidechannel.probe import aes_probe_batch
    return aes_probe_batch(params["gpu"], params["seed"],
                           params["scheduler"], params["batch"],
                           samples=params["samples"])


def _report_section(params) -> dict:
    """One report task's raw metrics (the report's cacheable unit).

    Mesh sections run on ``mesh_engine`` (scalar/batched); device
    sections run on ``engine`` (scalar/vectorized).
    """
    from repro.report import _MESH_TASKS, _TASK_FUNCS
    section = params["section"]
    engine = (params["mesh_engine"] if section in _MESH_TASKS
              else params["engine"])
    return {"section": section,
            "metrics": _TASK_FUNCS[section](params["seed"], engine)}


def _report(params) -> dict:
    """The full markdown paper-vs-measured report."""
    from repro.report import generate_report
    return {"markdown": generate_report(seed=params["seed"],
                                        include_mesh=params["mesh"],
                                        engine=params["engine"],
                                        mesh_engine=params["mesh_engine"])}


_SEED = Param("seed", "int", 0, doc="device seed")
_GPU = Param("gpu", "gpu", "V100", doc="V100/A100/H100")
#: Hot endpoints default to the vectorized fast path (bit-identical to
#: scalar); report endpoints keep the scalar golden model as default.
#: Choices come from the engine registry, so registering a kernel there
#: is what makes it servable — no per-endpoint lists to update.
_ENGINE_FAST = Param("engine", "str", "vectorized",
                     choices=tuple(engine_registry.names("device")),
                     doc="measurement engine (results bit-identical)")
_ENGINE_SCALAR = Param("engine", "str", "scalar",
                       choices=tuple(engine_registry.names("device")),
                       doc="measurement engine (results bit-identical)")
#: Mesh sections default to the batched fastmesh kernel (bit-identical
#: to the scalar Mesh2D golden model).
_MESH_ENGINE = Param("mesh_engine", "str",
                     engine_registry.default_name("mesh"),
                     choices=tuple(engine_registry.names("mesh")),
                     doc="mesh kernel (results bit-identical)")
_VC_ENGINE = Param("mesh_engine", "str",
                   engine_registry.default_name("vcmesh"),
                   choices=tuple(engine_registry.names("vcmesh")),
                   doc="VC-mesh kernel (results bit-identical)")

#: Registry domain each experiment's engine parameter resolves in;
#: experiments absent here use the ``device`` measurement engine.
ENGINE_DOMAINS = {"mesh-load-sweep": "mesh", "mesh-vc-sweep": "vcmesh"}

EXPERIMENTS = {e.name: e for e in (
    Experiment(
        "latency-matrix",
        "SM x slice L2 hit-latency matrix (Fig 1/2/3)",
        _latency_matrix,
        (_GPU, _SEED,
         Param("sms", "int-list", None, doc="SM subset (default: all)"),
         Param("samples", "int", 2, doc="timed trials per cell"),
         _ENGINE_FAST)),
    Experiment(
        "bandwidth-distribution",
        "per-SM solo bandwidth to one L2 slice (Fig 9b/13)",
        _bandwidth_distribution,
        (_GPU, _SEED,
         Param("slice", "int", 0, doc="destination L2 slice"),
         Param("sms", "int-list", None, doc="SM subset (default: all)"),
         _ENGINE_FAST)),
    Experiment(
        "speedup-table",
        "input speedups per hierarchy level (Fig 10)",
        _speedup_table,
        (_GPU, _SEED, Param("gpc", "int", 0, doc="GPC to scale within"),
         _ENGINE_FAST)),
    Experiment(
        "observations",
        "the paper's twelve observations, checked",
        _observations,
        (_SEED,)),
    Experiment(
        "mesh-load-sweep",
        "mesh load-latency curve as one batched run (Fig 22/23)",
        _mesh_load_sweep,
        (_SEED,
         Param("rates", "float-list", [0.05, 0.1, 0.2, 0.3],
               doc="injection rates (packets/cycle/compute-node)"),
         Param("arbiter", "str", "rr", choices=("rr", "age"),
               doc="router arbitration policy"),
         Param("cycles", "int", 2000, doc="cycles simulated per point"),
         Param("warmup", "int", 500, doc="cycles excluded from the stats"),
         _MESH_ENGINE)),
    Experiment(
        "mesh-vc-sweep",
        "credit-based wormhole VC grid as one batched run (Fig 21-class)",
        _mesh_vc_sweep,
        (Param("vc_counts", "int-list", [1, 2], doc="VCs per port"),
         Param("buffer_depths", "int-list", [4],
               doc="flit buffer depth per (port, VC)"),
         Param("credit_latencies", "int-list", [1],
               doc="credit return latency in cycles"),
         Param("rates", "float-list", [],
               doc="injection rates; empty = greedy sources"),
         Param("seeds", "int-list", [0], doc="traffic seeds"),
         Param("cycles", "int", 2000, doc="cycles simulated per lane"),
         Param("reply_flits", "int", 5, doc="flits per MC reply packet"),
         Param("window", "int", 100, doc="utilization sampling window"),
         _VC_ENGINE)),
    Experiment(
        "sidechannel-probe",
        "one AES/RSA timing-probe batch under static/random scheduling",
        _sidechannel_probe,
        (_GPU, _SEED,
         Param("attack", "str", "rsa", choices=("rsa", "aes"),
               doc="which oracle the probe batch drives"),
         Param("scheduler", "str", "static", choices=("static", "random"),
               doc="CTA scheduler: static (hardware) or random (defence)"),
         Param("batch", "int", 0,
               doc="probe batch index; distinct batches are distinct "
                   "computations"),
         Param("samples_per_point", "int", 2,
               doc="rsa: decryptions per 1-bit count"),
         Param("ladder_width", "int", 8,
               doc="rsa: adjacent 1-bit counts probed"),
         Param("samples", "int", 24, doc="aes: timed encryptions"))),
    Experiment(
        "report-section",
        "raw metrics of one report section",
        _report_section,
        (_SEED, Param("section", "str", "latency",
                      choices=REPORT_SECTIONS), _ENGINE_SCALAR,
         _MESH_ENGINE)),
    Experiment(
        "report",
        "full markdown paper-vs-measured report",
        _report,
        (_SEED, Param("mesh", "bool", True,
                      doc="include the slower mesh sections"),
         _ENGINE_SCALAR, _MESH_ENGINE)),
)}


def describe_experiments() -> dict:
    """JSON catalogue served under ``GET /v1/experiments``."""
    return {"experiments": [EXPERIMENTS[name].describe()
                            for name in sorted(EXPERIMENTS)]}


def cache_payload(name: str, params: dict) -> dict:
    """Everything the result depends on, for content addressing.

    GPU-bound experiments fold in the full spec dict (editing a spec
    invalidates their entries); ``observations``/``report*`` run all
    three Table I devices, so they fold in all three specs.  Pure mesh
    experiments depend only on their parameters — no device specs.
    """
    from repro.gpu.serialization import spec_to_dict
    from repro.gpu.specs import get_spec
    payload = {"experiment": name, "params": params}
    if "gpu" in params:
        payload["spec"] = spec_to_dict(get_spec(params["gpu"]))
    elif not name.startswith("mesh-"):
        payload["specs"] = {n: spec_to_dict(get_spec(n))
                            for n in _GPU_NAMES}
    return payload


def engine_param(name: str, params: dict):
    """The engine ref whose fingerprint addresses this experiment's cache.

    Returns a registry-qualified ``"domain:name"`` reference — VC-mesh
    experiments key on the ``vcmesh`` kernel, other mesh experiments on
    the ``mesh`` kernel (a ``*_VERSION`` bump invalidates exactly that
    kernel's entries), everything else on the ``device`` measurement
    engine.  ``None`` for experiments with no engine parameter
    (``observations``).
    """
    domain = ENGINE_DOMAINS.get(name, "device")
    engine = params.get("mesh_engine" if domain in ("mesh", "vcmesh")
                        else "engine")
    return None if engine is None else f"{domain}:{engine}"


def run_experiment(args) -> dict:
    """Pool worker: compute ``(name, params)`` — params pre-normalized."""
    name, params = args
    return EXPERIMENTS[name].fn(params)
