"""Pickle-free result transport over ``multiprocessing.shared_memory``.

The worker tier's results are canonical-JSON byte strings (often tens
to hundreds of kilobytes for a latency matrix or a mesh sweep).  The
default ``multiprocessing`` transport would pickle those bytes into a
pipe, copy them through the OS, and unpickle them on the other side —
three copies and two serializations of data that is already in its
final wire format.  This module moves any payload above
:data:`SHM_MIN_BYTES` through a POSIX shared-memory segment instead:

* the **worker** (producer) creates a segment, copies the bytes in
  once, detaches, and ships only ``(name, size, sha256)`` over the
  queue — a fixed ~100-byte message regardless of payload size;
* the **front-end** (consumer) attaches, reads the bytes, verifies the
  digest, then closes *and unlinks* the segment, so the kernel frees it
  the moment the response is built.

The segment/digest machinery itself lives in :mod:`repro.ipc` — the
same core the offline sweep path (:mod:`repro.exec.shm`) uses for
array-valued shard results — and this module only binds the serve
tier's policy to it: the ``repro-serve`` name prefix (worker-id scoped,
so a respawning pool sweeps exactly the dead worker's leftovers) and
the queue-inline size floor.
"""

from __future__ import annotations

from repro.ipc import (SegmentError, SegmentRef, read_segment,
                       share_segment, sweep_orphans)
from repro.units import KIB

#: Payloads at or above this size move through shared memory; smaller
#: ones ride the queue inline (the segment setup costs ~2 syscalls and
#: a page fault, which only pays off past a few pages).
SHM_MIN_BYTES = 32 * KIB

#: Name prefix of every segment this module creates: lets a respawning
#: pool sweep segments an earlier crashed worker left behind.
_PREFIX = "repro-serve"

#: The serve tier's descriptor/error vocabulary predates the factored
#: core; the names are kept as aliases of the :mod:`repro.ipc` types.
ShmRef = SegmentRef
ShmTransportError = SegmentError


def share_bytes(data: bytes, worker_id: int = 0) -> ShmRef:
    """Producer side: park ``data`` in a fresh segment, return its ref."""
    return share_segment(data, prefix=_PREFIX, owner=worker_id)


def read_shared(ref: ShmRef) -> bytes:
    """Consumer side: read, verify, and *unlink* the segment."""
    return read_segment(ref)


def cleanup_orphans(worker_id: int) -> int:
    """Unlink segments a dead worker ``worker_id`` left behind.

    Called when a replacement worker spawns after a crash.  Best-effort
    and Linux-only (``/dev/shm``); returns the number of segments
    removed.
    """
    return sweep_orphans(_PREFIX, worker_id)
