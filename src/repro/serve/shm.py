"""Pickle-free result transport over ``multiprocessing.shared_memory``.

The worker tier's results are canonical-JSON byte strings (often tens
to hundreds of kilobytes for a latency matrix or a mesh sweep).  The
default ``multiprocessing`` transport would pickle those bytes into a
pipe, copy them through the OS, and unpickle them on the other side —
three copies and two serializations of data that is already in its
final wire format.  This module moves any payload above
:data:`SHM_MIN_BYTES` through a POSIX shared-memory segment instead:

* the **worker** (producer) creates a segment, copies the bytes in
  once, detaches, and ships only ``(name, size, sha256)`` over the
  queue — a fixed ~100-byte message regardless of payload size;
* the **front-end** (consumer) attaches, reads the bytes, verifies the
  digest, then closes *and unlinks* the segment, so the kernel frees it
  the moment the response is built.

Ownership protocol: the consumer always unlinks.  The producer
unregisters the segment from its own ``resource_tracker`` (see
:func:`_untrack`) because otherwise the tracker of the *creating*
process would try to destroy the segment at exit — after the consumer
already unlinked it — and log spurious leak warnings.  A worker that
dies between creating a segment and its message being consumed leaks
that one segment; :func:`cleanup_orphans` sweeps such segments by name
prefix when a replacement worker spawns.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import os
from dataclasses import dataclass
from pathlib import Path

from repro.units import KIB

#: Payloads at or above this size move through shared memory; smaller
#: ones ride the queue inline (the segment setup costs ~2 syscalls and
#: a page fault, which only pays off past a few pages).
SHM_MIN_BYTES = 32 * KIB

#: Name prefix of every segment this module creates: lets a respawning
#: pool sweep segments an earlier crashed worker left behind.
_PREFIX = "repro-serve"

#: Where Linux exposes POSIX shared memory as files (orphan sweeping is
#: best-effort and skipped on platforms without it).
_SHM_DIR = Path("/dev/shm")

#: Distinguishes segments of one producer process (identical payloads
#: would otherwise collide on a digest-derived name).
_SEGMENT_COUNTER = itertools.count()


def _shared_memory():
    """The SharedMemory class (imported lazily: not on the hot path)."""
    from multiprocessing import shared_memory
    return shared_memory.SharedMemory


def _untrack(shm) -> None:
    """Unregister ``shm`` from this process's resource tracker.

    The producer hands ownership to the consumer, who unlinks.  Without
    this, the producer-side tracker would unlink the segment again at
    process exit and warn about a leak that never happened.  Private
    API, so failures are tolerated — the worst case is a harmless
    warning at worker exit.
    """
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(shm._name, "shared_memory")
    except (ImportError, AttributeError, KeyError):
        pass


@dataclass(frozen=True)
class ShmRef:
    """A handle to payload bytes parked in a shared-memory segment."""

    name: str
    size: int
    sha256: str


def share_bytes(data: bytes, worker_id: int = 0) -> ShmRef:
    """Producer side: park ``data`` in a fresh segment, return its ref."""
    if not data:
        raise ValueError("cannot share an empty payload")
    cls = _shared_memory()
    segment = cls(create=True, size=len(data),
                  name=f"{_PREFIX}-{worker_id}-{os.getpid()}-"
                       f"{next(_SEGMENT_COUNTER)}")
    try:
        segment.buf[:len(data)] = data
    finally:
        segment.close()
    _untrack(segment)
    return ShmRef(name=segment.name, size=len(data),
                  sha256=hashlib.sha256(data).hexdigest())


class ShmTransportError(RuntimeError):
    """The segment was missing or its content failed digest check."""


def read_shared(ref: ShmRef) -> bytes:
    """Consumer side: read, verify, and *unlink* the segment."""
    cls = _shared_memory()
    try:
        segment = cls(name=ref.name)
    except FileNotFoundError:
        raise ShmTransportError(
            f"shared segment {ref.name!r} vanished before it was read")
    try:
        data = bytes(segment.buf[:ref.size])
    finally:
        segment.close()
        with contextlib.suppress(FileNotFoundError):
            segment.unlink()
    if hashlib.sha256(data).hexdigest() != ref.sha256:
        raise ShmTransportError(
            f"shared segment {ref.name!r} failed its digest check")
    return data


def cleanup_orphans(worker_id: int) -> int:
    """Unlink segments a dead worker ``worker_id`` left behind.

    Called when a replacement worker spawns after a crash.  Best-effort
    and Linux-only (``/dev/shm``); returns the number of segments
    removed.
    """
    if not _SHM_DIR.is_dir():
        return 0
    removed = 0
    for path in _SHM_DIR.glob(f"{_PREFIX}-{worker_id}-*"):
        with contextlib.suppress(OSError):
            path.unlink()
            removed += 1
    return removed
